"""Random-seed management for trajectory-oriented calibration.

The paper treats the random seed ``s`` as a *coordinate of the particle*: the
pair ``(theta, s)`` maps one-to-one to a trajectory, which is what lets the
framework store, resample, and restart individual histories.  It additionally
uses **common random numbers**: "the same set of random seeds is employed to
generate the 20 realizations from the stochastic simulation" at every theta
(section V-B), which removes between-theta replicate noise from the weight
comparison.

:class:`SeedSequenceBank` provides both facilities on top of
``numpy.random.SeedSequence``:

* a reproducible common seed set shared by all parameter draws, and
* independent child streams for ancillary randomness (priors, thinning)
  that must not collide with simulation streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeedSequenceBank", "generator_for", "batch_generator_for",
           "mix_seed"]

# Stream tags.  The first three key ``SeedSequence`` spawn/entropy domains;
# the ``mix_seed``-based methods below additionally reserve the component
# position *immediately after* ``base_seed`` for their method tag, so no two
# methods can ever reach the same ``mix_seed`` argument tuple whatever their
# caller-supplied components are (a ``window_restart_seed`` call whose
# ``original_seed`` happens to equal another method's tag used to alias that
# method's seeds exactly).
_SIMULATION_STREAM = 0
_ANCILLARY_STREAM = 1
_BATCH_STREAM = 2
_WINDOW_DRAW_STREAM = 3
_WINDOW_RESTART_STREAM = 4


def generator_for(seed: int) -> np.random.Generator:
    """A fresh, deterministic generator for a trajectory seed.

    Every engine obtains its RNG through this function, which is what makes
    ``(theta, s) -> trajectory`` a pure mapping: same seed, same stream,
    regardless of which process or engine instance runs the simulation.
    """
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(int(seed))))


def batch_generator_for(seeds) -> np.random.Generator:
    """One shared stream for a whole ensemble, keyed by the seed *vector*.

    The batched simulation engine advances every ensemble member from a
    single generator, so the per-member scalar contract ``(theta, s) ->
    trajectory`` is replaced by a batch-level one: the ordered seed vector
    (plus the batch-stream tag) fully determines every member's draws.  Two
    batched runs with the same parameters and the same seed vector in the
    same order are bit-identical; permuting, growing, or shrinking the
    ensemble re-keys the stream and changes every member's draws (they stay
    correct in distribution).  The tag keeps the batch stream disjoint from
    the scalar per-trajectory streams of :func:`generator_for`, so mixing
    scalar and batched engines in one run never aliases randomness.

    This is also the **per-shard contract** of the sharded dispatch layer
    (:mod:`repro.hpc.sharding`): a shard covering slice ``[lo, hi)`` of a
    group's ordered seed vector draws from
    ``batch_generator_for(seeds[lo:hi])`` — a pure function of the slice
    contents, so shard results do not depend on which worker (or process)
    simulates them, only on the layout that produced the slices.
    """
    entropy = [_BATCH_STREAM] + [int(s) & 0x7FFFFFFFFFFFFFFF
                                 for s in np.asarray(seeds, dtype=np.int64)]
    if len(entropy) < 2:
        raise ValueError("batch stream needs at least one seed")
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(
        entropy=entropy)))


def mix_seed(*components: int) -> int:
    """Deterministically mix integer components into a single 63-bit seed.

    Used to derive per-(window, particle) restart seeds without collisions:
    ``mix_seed(base, window_index, particle_index)``.
    """
    ss = np.random.SeedSequence(entropy=[int(c) & 0x7FFFFFFFFFFFFFFF
                                         for c in components])
    return int(ss.generate_state(1, dtype=np.uint64)[0] & 0x7FFFFFFFFFFFFFFF)


@dataclass(frozen=True)
class SeedSequenceBank:
    """Reproducible seed supply for one calibration run.

    Parameters
    ----------
    base_seed:
        Master entropy for the whole run.  Two banks with the same base seed
        produce identical seed sets and ancillary generators.
    """

    base_seed: int = 20240215

    def common_replicate_seeds(self, n_replicates: int) -> list[int]:
        """The shared seed set used across *all* parameter draws.

        Implements the paper's common-random-numbers device: replicate ``r``
        of every theta uses ``seeds[r]``.
        """
        if n_replicates < 1:
            raise ValueError("n_replicates must be >= 1")
        ss = np.random.SeedSequence(self.base_seed, spawn_key=(_SIMULATION_STREAM,))
        state = ss.generate_state(n_replicates, dtype=np.uint64)
        return [int(s & 0x7FFFFFFFFFFFFFFF) for s in state]

    def ancillary_generator(self, purpose: int = 0,
                            window_index: int | None = None
                            ) -> np.random.Generator:
        """An RNG stream independent of every simulation stream.

        ``purpose`` distinguishes consumers (0 = prior sampling, 1 = bias
        thinning, 2 = resampling, ...), so adding a consumer never perturbs
        the draws of existing ones.

        ``window_index`` derives a further sub-stream per calibration window
        via ``spawn_key=(_ANCILLARY_STREAM, purpose, window_index)``.  Every
        per-window consumer (jitter, bias thinning, resampling) must pass it:
        re-creating the un-windowed stream each window would make every
        window consume the *same* draws, silently correlating its ancillary
        randomness across the whole run.  Omit it only for one-shot consumers
        (first-window prior sampling).
        """
        key: tuple[int, ...] = (_ANCILLARY_STREAM, int(purpose))
        if window_index is not None:
            if window_index < 0:
                raise ValueError("window_index must be >= 0")
            key = key + (int(window_index),)
        ss = np.random.SeedSequence(self.base_seed, spawn_key=key)
        return np.random.Generator(np.random.PCG64(ss))

    def batch_simulation_generator(self, seeds) -> np.random.Generator:
        """The batch-engine stream for an ordered ensemble seed vector.

        Thin, discoverable front door to :func:`batch_generator_for`: the
        bank's ``base_seed`` is already folded into every seed the bank
        hands out (:meth:`common_replicate_seeds`,
        :meth:`window_restart_seed`), so the batch stream is fully
        determined by ``(base_seed, seed vector, ensemble order)`` without
        mixing the base seed in a second time.
        """
        return batch_generator_for(seeds)

    def shard_simulation_generators(self, seeds, bounds) -> list[np.random.Generator]:
        """Per-shard batch streams for a sharded ensemble seed vector.

        The sharded-dispatch RNG contract: shard ``k`` covering the
        half-open slice ``bounds[k] = (lo, hi)`` of the ordered seed vector
        draws from ``batch_generator_for(seeds[lo:hi])`` — each shard is
        its own batch, keyed by its slice alone.  Consequences:

        * results are **bit-reproducible given the shard layout** and
          independent of the executor that runs the shards (workers rebuild
          the same stream from the same slice),
        * a single shard covering everything reproduces
          :meth:`batch_simulation_generator` exactly (the serial fast
          path), and
        * different layouts re-key every stream, so results across shard
          sizes agree in distribution only — the same relaxation as scalar
          vs batched.

        ``bounds`` is typically :func:`repro.hpc.partition.shard_bounds`
        output.  Worker processes rebuild the identical streams by calling
        :func:`batch_generator_for` on their task's seed slice
        (:func:`repro.hpc.sharding.run_shard`); this method is the
        parent-side contract surface, and the seeding tests pin the two
        against each other so they cannot silently diverge.
        """
        seeds_arr = np.asarray(seeds, dtype=np.int64)
        return [batch_generator_for(seeds_arr[lo:hi]) for lo, hi in bounds]

    def window_restart_seed(self, original_seed: int, window_index: int,
                            particle_index: int) -> int:
        """Fresh seed for restarting a particle into a new window.

        The paper re-parameterises a checkpoint with "1) the random seed" —
        restarted trajectories get new randomness rather than replaying the
        parent stream.  Mixing in the particle index keeps resampled
        duplicates of the same ancestor from evolving identically.  The
        method's stream tag sits in the reserved position right after the
        base seed, so no ``original_seed`` value can steer these seeds into
        :meth:`window_draw_seed`'s domain (or any other bank stream's).
        """
        return mix_seed(self.base_seed, _WINDOW_RESTART_STREAM, original_seed,
                        window_index, particle_index)

    def window_draw_seed(self, window_index: int, draw_index: int) -> int:
        """Seed of proposal ``draw_index`` in window ``window_index``.

        The adaptive-ensemble restart contract: a pure function of
        ``(base_seed, window_index, draw_index)`` — *not* of the cloud's
        size, the parent particle, or the draw's position inside any shard
        layout.  Growing or shrinking the cloud between windows therefore
        leaves the seeds of all surviving draw indices unchanged (the seed
        vector of a larger cloud extends the smaller one as a prefix), and
        resampled duplicates of one ancestor still diverge because their
        draw indices differ.  The stream tag, in the reserved position right
        after the base seed, keeps these seeds disjoint from
        :meth:`window_restart_seed` and every other bank stream.
        """
        if window_index < 0 or draw_index < 0:
            raise ValueError("window_index and draw_index must be >= 0")
        return mix_seed(self.base_seed, _WINDOW_DRAW_STREAM, window_index,
                        draw_index)
