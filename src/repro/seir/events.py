"""Event-driven simulation engine with an explicit future-event queue.

The paper's checkpointing description (section III-B) serialises "the number
of persons in each state, **the future state transition events**, the current
simulated time, etc.".  This engine mirrors that design: every individual who
enters a transient compartment gets a scheduled exit event (exponential dwell,
destination drawn at entry) pushed onto a heap, and a checkpoint snapshot
includes the pending event list verbatim.

Infection (S -> E) is the one non-scheduled process — its hazard depends on
the evolving compartment occupancy — and is advanced by fine time-slicing
within each day (binomial draws per slice), giving a hybrid discrete-event /
leap scheme.  Cost is O(total events), so like the exact SSA this engine is
for small populations; its role in the reproduction is to exercise
checkpoint-with-pending-events semantics, which the other engines do not have.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..data.schedule import PiecewiseConstant
from .compartments import Compartment, N_COMPARTMENTS
from .outputs import Trajectory, TrajectoryBuilder
from .parameters import DiseaseParameters
from .seeding import (generator_for, rng_from_jsonable,
                      rng_state_to_jsonable)
from .tauleap import _theta_function, compiled_transitions_for

__all__ = ["EventDrivenEngine", "ScheduledEvent"]


class ScheduledEvent(tuple):
    """A pending transition: ``(time, sequence, src, dst)``.

    Implemented as a tuple subclass so heap ordering (by time, then insertion
    sequence for determinism) works without a custom comparator and the event
    serialises to JSON as a plain list.
    """

    __slots__ = ()

    def __new__(cls, time: float, seq: int, src: int, dst: int):
        return super().__new__(cls, (float(time), int(seq), int(src), int(dst)))

    @property
    def time(self) -> float:
        return self[0]

    @property
    def src(self) -> int:
        return self[2]

    @property
    def dst(self) -> int:
        return self[3]


class EventDrivenEngine:
    """Discrete-event engine with serialisable pending transitions.

    Parameters mirror :class:`~repro.seir.tauleap.BinomialLeapEngine`;
    ``infection_slices_per_day`` controls the time resolution of the
    non-scheduled infection process.
    """

    name = "event_driven"

    def __init__(self, params: DiseaseParameters, seed: int, *,
                 theta_schedule: PiecewiseConstant | None = None,
                 start_day: int = 0,
                 infection_slices_per_day: int = 8) -> None:
        if infection_slices_per_day < 1:
            raise ValueError("infection_slices_per_day must be >= 1")
        self.params = params
        self.seed = int(seed)
        self.theta_schedule = theta_schedule
        self._theta_of = _theta_function(params, theta_schedule)
        self._table = compiled_transitions_for(params)
        self._rng = generator_for(seed)
        self.infection_slices_per_day = int(infection_slices_per_day)

        self._day = int(start_day)
        self._counts = np.zeros(N_COMPARTMENTS, dtype=np.int64)
        self._counts[Compartment.S] = params.population - params.initial_exposed
        self._cum_infections = 0
        self._cum_deaths = 0
        self._event_seq = 0
        self._events: list[ScheduledEvent] = []
        # Seed initial exposures through the scheduler so their progressions
        # are pending events, as they would be in the paper's simulator.
        self._admit(Compartment.E, params.initial_exposed, float(start_day))

    # ------------------------------------------------------------------ #
    @property
    def day(self) -> int:
        return self._day

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    def count_of(self, compartment: Compartment) -> int:
        return int(self._counts[compartment])

    @property
    def cumulative_infections(self) -> int:
        return int(self._cum_infections)

    @property
    def cumulative_deaths(self) -> int:
        return int(self._cum_deaths)

    @property
    def pending_event_count(self) -> int:
        """Number of future transition events currently scheduled."""
        return len(self._events)

    def population_conserved(self) -> bool:
        return int(self._counts.sum()) == self.params.population

    # ------------------------------------------------------------------ #
    def _source_index(self, compartment: int) -> int | None:
        hits = np.nonzero(self._table.sources == compartment)[0]
        return int(hits[0]) if len(hits) else None

    def _admit(self, compartment: Compartment, n: int, now: float) -> None:
        """Place ``n`` individuals into ``compartment`` and schedule exits."""
        if n <= 0:
            return
        self._counts[compartment] += n
        idx = self._source_index(int(compartment))
        if idx is None:
            return  # absorbing state (R, D)
        h_tot = float(self._table.total_hazards[idx])
        if h_tot <= 0:
            return
        dwells = self._rng.exponential(1.0 / h_tot, size=n)
        dests = self._table.dest_indices[idx]
        probs = self._table.dest_probs[idx]
        if len(dests) == 1:
            chosen = np.full(n, int(dests[0]))
        else:
            chosen = self._rng.choice(dests, size=n, p=probs)
        for dwell, dst in zip(dwells, chosen):
            self._event_seq += 1
            heapq.heappush(self._events,
                           ScheduledEvent(now + float(dwell), self._event_seq,
                                          int(compartment), int(dst)))

    def _fire_events_until(self, t_end: float) -> int:
        """Execute scheduled transitions up to ``t_end``; return new deaths."""
        deaths = 0
        while self._events and self._events[0].time <= t_end:
            ev = heapq.heappop(self._events)
            src, dst = ev.src, ev.dst
            if self._counts[src] <= 0:  # defensive; should not happen
                continue
            self._counts[src] -= 1
            self._admit(Compartment(dst), 1, ev.time)
            # _admit incremented dst; absorbing states have no exits scheduled.
            if dst in (int(Compartment.D_U), int(Compartment.D_D)):
                deaths += 1
        return deaths

    def step_day(self) -> tuple[int, int]:
        """Advance one day: alternate infection slices and event firing."""
        theta = self._theta_of(self._day)
        rng = self._rng
        dt = 1.0 / self.infection_slices_per_day
        day_inf = 0
        day_dead = 0
        for k in range(self.infection_slices_per_day):
            now = self._day + k * dt
            day_dead += self._fire_events_until(now + dt)
            weighted = float(self._table.infection_weights @ self._counts)
            lam = theta * weighted / self.params.population
            p_inf = -np.expm1(-lam * dt)
            new_e = int(rng.binomial(self._counts[Compartment.S], p_inf)) \
                if p_inf > 0 else 0
            if new_e:
                self._counts[Compartment.S] -= new_e
                self._admit(Compartment.E, new_e, now + dt)
                day_inf += new_e
        self._day += 1
        self._cum_infections += day_inf
        self._cum_deaths += day_dead
        return day_inf, day_dead

    def _census(self) -> tuple[int, int]:
        c = self._counts
        hosp = int(c[Compartment.H_U] + c[Compartment.H_D]
                   + c[Compartment.HP_U] + c[Compartment.HP_D])
        icu = int(c[Compartment.C_U] + c[Compartment.C_D])
        return hosp, icu

    def run_until(self, end_day: int) -> Trajectory:
        if end_day < self._day:
            raise ValueError(f"end_day {end_day} is before current day {self._day}")
        builder = TrajectoryBuilder(self._day)
        while self._day < end_day:
            inf, dead = self.step_day()
            hosp, icu = self._census()
            builder.append_day(inf, dead, hosp, icu)
        return builder.build()

    # ------------------------------------------------------------------ #
    def state_snapshot(self) -> dict:
        """Snapshot including the pending future-event queue (paper III-B)."""
        return {
            "engine": self.name,
            "day": self._day,
            "counts": self._counts.tolist(),
            "cum_infections": int(self._cum_infections),
            "cum_deaths": int(self._cum_deaths),
            "seed": self.seed,
            "rng_state": rng_state_to_jsonable(self._rng),
            "event_seq": self._event_seq,
            "pending_events": [list(ev) for ev in sorted(self._events)],
            "infection_slices_per_day": self.infection_slices_per_day,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict, params: DiseaseParameters, *,
                      seed: int | None = None,
                      theta_schedule: PiecewiseConstant | None = None,
                      ) -> "EventDrivenEngine":
        engine = cls.__new__(cls)
        engine.params = params
        engine.theta_schedule = theta_schedule
        engine._theta_of = _theta_function(params, theta_schedule)
        engine._table = compiled_transitions_for(params)
        engine.infection_slices_per_day = int(snapshot["infection_slices_per_day"])
        engine._day = int(snapshot["day"])
        engine._counts = np.asarray(snapshot["counts"], dtype=np.int64).copy()
        engine._cum_infections = int(snapshot["cum_infections"])
        engine._cum_deaths = int(snapshot["cum_deaths"])
        engine._event_seq = int(snapshot["event_seq"])
        engine._events = [ScheduledEvent(*ev) for ev in snapshot["pending_events"]]
        heapq.heapify(engine._events)
        if seed is not None:
            engine.seed = int(seed)
            engine._rng = generator_for(int(seed))
        else:
            engine.seed = int(snapshot["seed"])
            engine._rng = rng_from_jsonable(snapshot["rng_state"])
        return engine
