"""Binomial-leap (chain-binomial) simulation engine.

This is the workhorse engine of the reproduction: a fixed-step, day-subdivided
stochastic update in which, during each substep of length ``dt``:

* every susceptible independently becomes exposed with probability
  ``1 - exp(-lambda * dt)`` where ``lambda`` is the instantaneous force of
  infection, and
* every occupant of a transient compartment exits with probability
  ``1 - exp(-h_tot * dt)`` where ``h_tot`` sums the competing hazards out of
  that compartment; exits are allocated to (hazard-channel, destination)
  pairs by a multinomial draw with probabilities ``h_i / h_tot * p_dest`` —
  the exact conditional law for competing exponential risks.

The engine simulates **one trajectory per instance** with its own
``numpy`` generator derived from the particle seed.  That preserves the
paper's central invariant — ``(theta, s)`` maps one-to-one to a trajectory —
which vectorised multi-trajectory batching with a *shared* RNG cannot: each
member's draws would depend on the batch composition.  Ensemble concurrency
across scalar instances is provided by :mod:`repro.hpc`; alternatively
:class:`~repro.seir.batch_engine.BatchedBinomialLeapEngine` steps the whole
particle cloud as one ``(n_particles, n_compartments)`` state matrix under a
relaxed, batch-level RNG contract (bit-reproducible given the *ordered* seed
vector via :func:`~repro.seir.seeding.batch_generator_for`; equal to this
engine in distribution, not bit-for-bit).  This scalar engine remains the
reference oracle the batched engine is cross-checked against.

Within a trajectory the update is fully vectorised over compartments: the
per-substep cost is one vectorised binomial draw for all exits plus one
multinomial per *active* multi-destination compartment, per the
scientific-python optimisation guidance (no per-individual Python loops).

Because the transition table depends only on the *structural* disease
parameters — everything except ``population``, ``initial_exposed`` and
``transmission_rate``, which the leap update reads directly —
:func:`compiled_transitions_for` memoises :class:`CompiledTransitions` by
that identity.  Sequential calibration restarts tens of thousands of engines
per window whose draws differ only in theta (and seed), so the table is
built once per distinct structure instead of once per engine.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Callable

import numpy as np

from ..data.schedule import PiecewiseConstant
from .compartments import (Compartment, N_COMPARTMENTS, build_transitions,
                           infectiousness_weights)
from .outputs import Trajectory, TrajectoryBuilder
from .parameters import DiseaseParameters
from .seeding import (generator_for, rng_from_jsonable,
                      rng_state_to_jsonable)

__all__ = ["BinomialLeapEngine", "CompiledTransitions",
           "compiled_transitions_for", "transition_table_key"]

# Hot-loop integer constants (enum attribute access is measurably slow).
_S = int(Compartment.S)
_E = int(Compartment.E)
_H_U, _H_D = int(Compartment.H_U), int(Compartment.H_D)
_HP_U, _HP_D = int(Compartment.HP_U), int(Compartment.HP_D)
_C_U, _C_D = int(Compartment.C_U), int(Compartment.C_D)


class CompiledTransitions:
    """Transition table compiled to flat arrays for the leap update.

    For every source compartment with at least one outgoing hazard we store
    the total hazard and the flattened (destination, probability) allocation
    across all competing channels.
    """

    def __init__(self, params: DiseaseParameters) -> None:
        by_src: dict[int, list] = {}
        for spec in build_transitions(params):
            by_src.setdefault(int(spec.src), []).append(spec)

        self.sources: np.ndarray = np.array(sorted(by_src), dtype=np.int64)
        self.total_hazards: np.ndarray = np.zeros(len(self.sources))
        self.dest_indices: list[np.ndarray] = []
        self.dest_probs: list[np.ndarray] = []
        #: Per source, boolean mask of destinations that are death states.
        self.dest_is_death: list[np.ndarray] = []

        death_set = {int(Compartment.D_U), int(Compartment.D_D)}
        for i, src in enumerate(self.sources):
            specs = by_src[int(src)]
            h_tot = float(sum(s.hazard for s in specs))
            self.total_hazards[i] = h_tot
            dests: list[int] = []
            probs: list[float] = []
            for s in specs:
                channel_p = s.hazard / h_tot if h_tot > 0 else 0.0
                for dst, p in s.destinations:
                    dests.append(int(dst))
                    probs.append(channel_p * p)
            d = np.array(dests, dtype=np.int64)
            p_arr = np.array(probs, dtype=np.float64)
            # Merge duplicate destinations (can occur if two channels share one).
            uniq, inv = np.unique(d, return_inverse=True)
            merged = np.zeros(len(uniq))
            np.add.at(merged, inv, p_arr)
            self.dest_indices.append(uniq)
            self.dest_probs.append(merged / merged.sum())
            self.dest_is_death.append(np.array([int(x) in death_set for x in uniq]))

        self.infection_weights = infectiousness_weights(params)

        # Instances are shared across engines via compiled_transitions_for;
        # freeze the arrays consumers index into so sharing stays safe.
        self.sources.setflags(write=False)
        self.total_hazards.setflags(write=False)
        self.infection_weights.setflags(write=False)
        for arr in (*self.dest_indices, *self.dest_probs, *self.dest_is_death):
            arr.setflags(write=False)


#: Disease-parameter fields that shape the transition table / infection
#: weights; the complement (population, initial_exposed, transmission_rate)
#: feeds the leap update directly and never invalidates a compiled table.
_STRUCTURAL_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(DiseaseParameters)
    if f.name not in ("population", "initial_exposed", "transmission_rate"))

_TABLE_CACHE: dict[tuple, CompiledTransitions] = {}
_TABLE_CACHE_MAX = 128


def transition_table_key(params: DiseaseParameters) -> tuple:
    """Memoisation key: the structural parameter fields, in field order."""
    return tuple(getattr(params, name) for name in _STRUCTURAL_FIELDS)


def compiled_transitions_for(params: DiseaseParameters) -> CompiledTransitions:
    """Memoised :class:`CompiledTransitions` lookup by structural identity.

    Engines restarted with only theta/seed overrides (the common sequential
    calibration case) share one immutable table, making engine construction
    near-free.  The cache is process-local and capped; eviction is FIFO.
    """
    key = transition_table_key(params)
    table = _TABLE_CACHE.get(key)
    if table is None:
        if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
            _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
        table = CompiledTransitions(params)
        _TABLE_CACHE[key] = table
    return table


def _theta_function(params: DiseaseParameters,
                    schedule: PiecewiseConstant | None) -> Callable[[float], float]:
    if schedule is None:
        theta = float(params.transmission_rate)
        return lambda _t: theta
    return lambda t: float(schedule(int(t)))


class BinomialLeapEngine:
    """Chain-binomial stochastic SEIR engine for a single trajectory.

    Parameters
    ----------
    params:
        Disease parameterisation.
    seed:
        Particle random seed; fully determines the trajectory given params.
    steps_per_day:
        Substeps per simulated day (leap accuracy knob; 4 by default).
    theta_schedule:
        Optional piecewise transmission-rate schedule overriding
        ``params.transmission_rate`` day by day (used by the ground-truth
        generator; calibration holds theta constant within a window).
    start_day:
        Day index at which this engine's clock begins.
    """

    name = "binomial_leap"

    def __init__(self, params: DiseaseParameters, seed: int, *,
                 steps_per_day: int = 4,
                 theta_schedule: PiecewiseConstant | None = None,
                 start_day: int = 0) -> None:
        if steps_per_day < 1:
            raise ValueError("steps_per_day must be >= 1")
        self.params = params
        self.seed = int(seed)
        self.steps_per_day = int(steps_per_day)
        self.theta_schedule = theta_schedule
        self._theta_of = _theta_function(params, theta_schedule)
        self._table = compiled_transitions_for(params)
        self._prepare_fast_tables()
        self._rng = generator_for(seed)

        self._day = int(start_day)
        self._counts = np.zeros(N_COMPARTMENTS, dtype=np.int64)
        self._counts[Compartment.S] = params.population - params.initial_exposed
        self._counts[Compartment.E] = params.initial_exposed
        self._cum_infections = 0
        self._cum_deaths = 0

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def day(self) -> int:
        """Current simulation day (start of the next unsimulated day)."""
        return self._day

    @property
    def counts(self) -> np.ndarray:
        """Copy of the current compartment occupancy vector."""
        return self._counts.copy()

    def count_of(self, compartment: Compartment) -> int:
        return int(self._counts[compartment])

    @property
    def cumulative_infections(self) -> int:
        return int(self._cum_infections)

    @property
    def cumulative_deaths(self) -> int:
        return int(self._cum_deaths)

    def population_conserved(self) -> bool:
        """Closed-population invariant: compartment sum equals N."""
        return int(self._counts.sum()) == self.params.population

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #
    def _prepare_fast_tables(self) -> None:
        """Precompute per-substep constants (exit probabilities, int lists)."""
        dt = 1.0 / self.steps_per_day
        self._p_exit = -np.expm1(-self._table.total_hazards * dt)
        self._src_list = [int(s) for s in self._table.sources]

    def _force_of_infection(self, theta: float) -> float:
        weighted = float(self._table.infection_weights @ self._counts)
        return theta * weighted / self.params.population

    def _substep(self, theta: float, dt: float) -> tuple[int, int]:
        """Advance one substep; return (new_infections, new_deaths)."""
        counts = self._counts
        table = self._table
        rng = self._rng

        lam = self._force_of_infection(theta)
        new_e = 0
        if lam > 0.0 and counts[_S] > 0:
            p_inf = -np.expm1(-lam * dt)
            new_e = int(rng.binomial(counts[_S], p_inf))

        # One vectorised draw for the total exits of every transient source.
        n_exit = rng.binomial(counts[table.sources], self._p_exit)

        delta = np.zeros(N_COMPARTMENTS, dtype=np.int64)
        delta[_S] -= new_e
        delta[_E] += new_e

        new_deaths = 0
        src_list = self._src_list
        dest_lists = table.dest_indices
        for i in range(len(src_list)):
            k = int(n_exit[i])
            if k == 0:
                continue
            dests = dest_lists[i]
            delta[src_list[i]] -= k
            if len(dests) == 1:
                delta[dests[0]] += k
                if table.dest_is_death[i][0]:
                    new_deaths += k
            else:
                allocated = rng.multinomial(k, table.dest_probs[i])
                delta[dests] += allocated
                death_mask = table.dest_is_death[i]
                if death_mask.any():
                    new_deaths += int(allocated[death_mask].sum())

        counts += delta
        return new_e, new_deaths

    def step_day(self) -> tuple[int, int]:
        """Simulate one full day; return (new_infections, new_deaths)."""
        theta = self._theta_of(self._day)
        dt = 1.0 / self.steps_per_day
        day_inf = 0
        day_dead = 0
        for _ in range(self.steps_per_day):
            inf, dead = self._substep(theta, dt)
            day_inf += inf
            day_dead += dead
        self._day += 1
        self._cum_infections += day_inf
        self._cum_deaths += day_dead
        return day_inf, day_dead

    def _census(self) -> tuple[int, int]:
        c = self._counts
        hosp = int(c[_H_U] + c[_H_D] + c[_HP_U] + c[_HP_D])
        icu = int(c[_C_U] + c[_C_D])
        return hosp, icu

    def run_until(self, end_day: int) -> Trajectory:
        """Simulate days ``[current_day, end_day)`` and return their record."""
        if end_day < self._day:
            raise ValueError(f"end_day {end_day} is before current day {self._day}")
        builder = TrajectoryBuilder(self._day)
        while self._day < end_day:
            inf, dead = self.step_day()
            hosp, icu = self._census()
            builder.append_day(inf, dead, hosp, icu)
        return builder.build()

    # ------------------------------------------------------------------ #
    # Snapshot support (consumed by repro.seir.checkpoint)
    # ------------------------------------------------------------------ #
    def state_snapshot(self) -> dict:
        """JSON-safe snapshot of everything needed to resume this engine."""
        return {
            "engine": self.name,
            "day": self._day,
            "counts": self._counts.tolist(),
            "cum_infections": int(self._cum_infections),
            "cum_deaths": int(self._cum_deaths),
            "steps_per_day": self.steps_per_day,
            "seed": self.seed,
            "rng_state": rng_state_to_jsonable(self._rng),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict, params: DiseaseParameters, *,
                      seed: int | None = None,
                      theta_schedule: PiecewiseConstant | None = None,
                      ) -> "BinomialLeapEngine":
        """Rebuild an engine from a snapshot, optionally re-seeded.

        If ``seed`` is given the RNG starts a *fresh* stream (the paper's
        restart knob 1); otherwise the serialised stream continues bit-exactly.
        """
        engine = cls.__new__(cls)
        engine.params = params
        engine.steps_per_day = int(snapshot["steps_per_day"])
        engine.theta_schedule = theta_schedule
        engine._theta_of = _theta_function(params, theta_schedule)
        engine._table = compiled_transitions_for(params)
        engine._prepare_fast_tables()
        engine._day = int(snapshot["day"])
        engine._counts = np.asarray(snapshot["counts"], dtype=np.int64).copy()
        if engine._counts.shape != (N_COMPARTMENTS,):
            raise ValueError("snapshot counts have wrong shape")
        engine._cum_infections = int(snapshot["cum_infections"])
        engine._cum_deaths = int(snapshot["cum_deaths"])
        if seed is not None:
            engine.seed = int(seed)
            engine._rng = generator_for(int(seed))
        else:
            engine.seed = int(snapshot["seed"])
            engine._rng = rng_from_jsonable(snapshot["rng_state"])
        return engine


# --------------------------------------------------------------------------- #
# RNG state (de)serialisation now lives in :mod:`repro.seir.seeding` (the
# only module allowed to construct RNG state); the old underscore names stay
# importable for the other engine modules and any external snapshot tooling.
# --------------------------------------------------------------------------- #
_rng_state_to_jsonable = rng_state_to_jsonable
_rng_from_jsonable = rng_from_jsonable
