"""Batched binomial-leap engine: the whole particle cloud as one matrix.

:class:`BatchedBinomialLeapEngine` advances an entire ensemble as a single
``(n_particles, n_compartments)`` int64 state matrix.  Per substep it issues

* one vectorised ``binomial`` over the susceptible column for infections
  (per-particle force of infection, so every member keeps its own theta),
* one ``binomial`` over the ``(n_particles, n_sources)`` occupancy matrix
  for the total exits of every transient compartment, and
* one batched allocation per *active* multi-destination source (a
  complementary ``binomial`` for two-way splits, ``multinomial`` otherwise),

replacing ``n_particles`` scalar engine objects and Python substep loops
with a handful of NumPy calls per substep.  Dynamics are identical in law
to :class:`~repro.seir.tauleap.BinomialLeapEngine` — same transition table
(:func:`~repro.seir.tauleap.compiled_transitions_for`), same per-substep
exit probabilities — which is what the scalar/batched parity tests assert
distributionally (matched means/variances of daily infections, deaths and
census under common parameters).

Batch RNG contract
------------------
All members draw from **one** shared generator keyed by the *ordered* seed
vector (:func:`~repro.seir.seeding.batch_generator_for`; see the draw-order
precedent in :mod:`repro.core.bias`).  Consequences, in contract form:

* A batched run is bit-reproducible given ``(base_seed, seed vector,
  ensemble order)`` — the calibrator derives the seed vector from its
  :class:`~repro.seir.seeding.SeedSequenceBank`, so fixing the base seed
  fixes the whole batched simulation.
* The stream is consumed substep-major: infections for all particles, then
  the exit matrix, then allocation draws source-by-source in table order —
  allocation draws are issued only for sources with at least one exit
  anywhere in the batch (a deterministic function of the state).
* Per-member draws depend on the batch composition, so the scalar
  invariant ``(theta, s) -> trajectory`` is relaxed to batch level: scalar
  and batched trajectories for the same seed agree in distribution, not
  bit-for-bit.  The paper's common-random-numbers replicate coupling is
  likewise distributional only under batching.

Per-shard extension (sharded dispatch)
--------------------------------------
When a batch is split into contiguous shards to use several executor
workers (:mod:`repro.hpc.sharding`), **each shard is its own batch**: its
stream is keyed by the ordered seed vector of its slice alone
(:meth:`~repro.seir.seeding.SeedSequenceBank.shard_simulation_generators`).
Therefore

* a sharded run is bit-reproducible given ``(base_seed, shard layout)``
  and independent of *which* executor runs the shards (serial and process
  pools agree bit-for-bit for the same layout),
* a single shard covering the whole group reproduces the unsharded batch
  stream exactly (the serial fast path), and
* changing the shard layout re-keys every shard's stream — results across
  layouts agree in distribution only, exactly as scalar vs batched do.

Checkpoints are exported *per particle* in the scalar ``binomial_leap``
snapshot format, so resampling, forecasting and scalar restarts consume
them unchanged; the recorded RNG state is the fresh per-seed stream of
:func:`~repro.seir.seeding.generator_for` (a batch stream cannot be
partitioned per member).  A batched restart from per-particle checkpoints
(:meth:`BatchedBinomialLeapEngine.from_particle_snapshots`) always starts a
fresh batch stream from its new seed vector.
"""

from __future__ import annotations

import numpy as np

from ..core.contracts import shaped
from ..data.schedule import PiecewiseConstant
from .checkpoint import Checkpoint, StackedLeapState, stack_leap_snapshots
from .compartments import (Compartment, HOSPITAL_COMPARTMENTS,
                           ICU_COMPARTMENTS, N_COMPARTMENTS)
from .outputs import Trajectory
from .parameters import DiseaseParameters
from .seeding import (batch_generator_for, generator_for,
                      rng_from_jsonable, rng_state_to_jsonable)
from .tauleap import compiled_transitions_for

__all__ = ["BatchedBinomialLeapEngine", "BatchTrajectory",
           "leap_particle_snapshot", "stack_channel_tensor"]

_S = int(Compartment.S)
_E = int(Compartment.E)


def leap_particle_snapshot(day: int, counts_row, cum_infections: int,
                           cum_deaths: int, steps_per_day: int,
                           seed: int) -> dict:
    """One ensemble member's state as a scalar ``binomial_leap`` snapshot.

    The interchange format between batched state (rows of a stacked count
    matrix, wherever it lives — an engine in this process or a shard result
    shipped back from a worker) and the scalar checkpoint machinery.  The
    recorded RNG state is the member seed's fresh :func:`generator_for`
    stream: a shared batch stream has no per-member marginal, and every
    calibrator restart overrides the seed anyway.
    """
    return {
        "engine": "binomial_leap",
        "day": int(day),
        "counts": np.asarray(counts_row, dtype=np.int64).tolist(),
        "cum_infections": int(cum_infections),
        "cum_deaths": int(cum_deaths),
        "steps_per_day": int(steps_per_day),
        "seed": int(seed),
        "rng_state": rng_state_to_jsonable(generator_for(int(seed))),
    }
_HOSP_COLS = np.array([int(c) for c in HOSPITAL_COMPARTMENTS], dtype=np.int64)
_ICU_COLS = np.array([int(c) for c in ICU_COMPARTMENTS], dtype=np.int64)


class BatchTrajectory:
    """Stacked daily outputs of a batched run over ``[start_day, end_day)``.

    Channel matrices are ``(n_particles, n_days)`` float64, row ``i`` being
    member ``i``'s record.  :meth:`trajectory` materialises a per-particle
    :class:`~repro.seir.outputs.Trajectory` on demand, which is how the
    calibrator builds its :class:`~repro.core.particle.ParticleEnsemble`
    directly from the stacked outputs.
    """

    def __init__(self, start_day: int, infections: np.ndarray,
                 deaths: np.ndarray, hospital_census: np.ndarray,
                 icu_census: np.ndarray) -> None:
        self.start_day = int(start_day)
        mats = [np.asarray(m, dtype=np.float64)
                for m in (infections, deaths, hospital_census, icu_census)]
        shape = mats[0].shape
        if len(shape) != 2 or any(m.shape != shape for m in mats):
            raise ValueError("channel matrices must share one 2-d shape")
        self.infections, self.deaths = mats[0], mats[1]
        self.hospital_census, self.icu_census = mats[2], mats[3]

    @property
    def n_particles(self) -> int:
        return int(self.infections.shape[0])

    @property
    def n_days(self) -> int:
        return int(self.infections.shape[1])

    @property
    def end_day(self) -> int:
        return self.start_day + self.n_days

    @shaped(returns="(n_particles, n_days) float64")
    def channel_matrix(self, channel: str) -> np.ndarray:
        """The named channel's ``(n_particles, n_days)`` matrix (no copy)."""
        from ..data.sources import CASES, DEATHS, HOSPITAL_CENSUS, ICU_CENSUS
        mapping = {CASES: self.infections, DEATHS: self.deaths,
                   HOSPITAL_CENSUS: self.hospital_census,
                   ICU_CENSUS: self.icu_census}
        if channel not in mapping:
            raise KeyError(f"unknown channel {channel!r}")
        return mapping[channel]

    def trajectory(self, i: int) -> Trajectory:
        """Member ``i``'s record as a scalar :class:`Trajectory`."""
        return Trajectory(self.start_day, self.infections[i], self.deaths[i],
                          self.hospital_census[i], self.icu_census[i])

    def trajectories(self) -> list[Trajectory]:
        return [self.trajectory(i) for i in range(self.n_particles)]

    def window(self, start_day: int, end_day: int) -> "BatchTrajectory":
        """Slice all members to days ``[start_day, end_day)``."""
        if start_day < self.start_day or end_day > self.end_day \
                or end_day < start_day:
            raise ValueError(
                f"window [{start_day}, {end_day}) not within "
                f"[{self.start_day}, {self.end_day})")
        lo, hi = start_day - self.start_day, end_day - self.start_day
        return BatchTrajectory(start_day, self.infections[:, lo:hi],
                               self.deaths[:, lo:hi],
                               self.hospital_census[:, lo:hi],
                               self.icu_census[:, lo:hi])


@shaped(returns="(n_scenarios, n_particles, n_days) float64")
def stack_channel_tensor(batches: "list[BatchTrajectory]",
                         channel: str) -> np.ndarray:
    """Stack per-scenario batches into one scenario-axis tensor (copies).

    The scenario-tensor view of a sweep: element ``[s, i, d]`` is scenario
    ``s``'s member ``i`` on day ``d``.  Every batch must cover the same
    days with the same member count — scenarios are parameter worlds over
    one shared cloud shape, so a shape mismatch means the inputs are not
    one sweep's outputs.
    """
    if not batches:
        raise ValueError("need at least one BatchTrajectory to stack")
    first = batches[0]
    for b in batches[1:]:
        if (b.start_day, b.n_particles, b.n_days) != \
                (first.start_day, first.n_particles, first.n_days):
            raise ValueError(
                f"scenario batches disagree on shape/coverage: "
                f"(start_day={b.start_day}, n_particles={b.n_particles}, "
                f"n_days={b.n_days}) vs (start_day={first.start_day}, "
                f"n_particles={first.n_particles}, n_days={first.n_days})")
    return np.stack([b.channel_matrix(channel) for b in batches], axis=0)


class BatchedBinomialLeapEngine:
    """Chain-binomial SEIR engine for a whole ensemble at once.

    Parameters
    ----------
    params:
        Shared *structural* disease parameterisation (everything except the
        transmission rate must be common to the batch; members with
        different structure belong in different batches).
    seeds:
        Ordered per-member seed vector; together with ``params``/``thetas``
        it keys the shared batch RNG stream (see the module docstring).
    thetas:
        Optional per-member transmission rates; defaults to
        ``params.transmission_rate`` for every member.
    steps_per_day:
        Substeps per simulated day (leap accuracy knob; 4 by default).
    theta_schedule:
        Optional piecewise schedule applied to *all* members, overriding
        ``thetas`` day by day (mirrors the scalar engine's precedence).
    start_day:
        Day index at which the batch clock begins.
    rng:
        Optional pre-built batch generator (e.g. from
        :meth:`~repro.seir.seeding.SeedSequenceBank.batch_simulation_generator`);
        defaults to :func:`batch_generator_for` over ``seeds``.  Callers
        passing their own generator own the reproducibility contract.
    """

    name = "binomial_leap_batched"

    def __init__(self, params: DiseaseParameters, seeds, *,
                 thetas=None, steps_per_day: int = 4,
                 theta_schedule: PiecewiseConstant | None = None,
                 start_day: int = 0,
                 rng: np.random.Generator | None = None) -> None:
        if steps_per_day < 1:
            raise ValueError("steps_per_day must be >= 1")
        self.params = params
        self.seeds = np.array(seeds, dtype=np.int64)
        if self.seeds.ndim != 1 or self.seeds.size < 1:
            raise ValueError("seeds must be a non-empty 1-d vector")
        n = self.seeds.size
        self.steps_per_day = int(steps_per_day)
        self.theta_schedule = theta_schedule
        self._set_thetas(thetas, n)
        self._prepare_tables()
        self._rng = rng if rng is not None else batch_generator_for(self.seeds)

        self._day = int(start_day)
        self._counts = np.zeros((n, N_COMPARTMENTS), dtype=np.int64)
        self._counts[:, _S] = params.population - params.initial_exposed
        self._counts[:, _E] = params.initial_exposed
        self._cum_infections = np.zeros(n, dtype=np.int64)
        self._cum_deaths = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _set_thetas(self, thetas, n: int) -> None:
        if thetas is None:
            self._thetas = np.full(n, float(self.params.transmission_rate))
        else:
            self._thetas = np.asarray(thetas, dtype=np.float64).copy()
            if self._thetas.shape != (n,):
                raise ValueError("thetas must match the seed vector length")
            if not np.all(np.isfinite(self._thetas)):
                raise ValueError("thetas must be finite")

    def _prepare_tables(self) -> None:
        table = compiled_transitions_for(self.params)
        self._table = table
        dt = 1.0 / self.steps_per_day
        self._p_exit = -np.expm1(-table.total_hazards * dt)
        self._src_list = [int(s) for s in table.sources]

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #
    @property
    def n_particles(self) -> int:
        return int(self.seeds.size)

    @property
    def day(self) -> int:
        """Current simulation day (start of the next unsimulated day)."""
        return self._day

    @property
    def counts(self) -> np.ndarray:
        """Copy of the ``(n_particles, n_compartments)`` occupancy matrix."""
        return self._counts.copy()

    @property
    def thetas(self) -> np.ndarray:
        """Copy of the per-member transmission rates."""
        return self._thetas.copy()

    @property
    def cumulative_infections(self) -> np.ndarray:
        return self._cum_infections.copy()

    @property
    def cumulative_deaths(self) -> np.ndarray:
        return self._cum_deaths.copy()

    def population_conserved(self) -> bool:
        """Closed-population invariant for every member."""
        return bool(np.all(self._counts.sum(axis=1) == self.params.population))

    # ------------------------------------------------------------------ #
    # Dynamics
    # ------------------------------------------------------------------ #
    def _day_thetas(self) -> np.ndarray:
        if self.theta_schedule is None:
            return self._thetas
        return np.full(self.n_particles, float(self.theta_schedule(self._day)))

    @shaped(thetas="(n_members,) float64",
            returns=("(n_members,) int", "(n_members,) int"))
    def _substep(self, thetas: np.ndarray, dt: float
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Advance one substep; return per-member (new_infections, new_deaths)."""
        counts = self._counts
        table = self._table
        rng = self._rng

        lam = thetas * (counts @ table.infection_weights) / self.params.population
        # A non-positive force of infection means no new exposures — the
        # scalar oracle's `if lam > 0` guard, vectorised as a clamp.
        p_inf = -np.expm1(-np.maximum(lam, 0.0) * dt)
        new_e = rng.binomial(counts[:, _S], p_inf)

        # One draw for the total exits of every (member, transient source).
        n_exit = rng.binomial(counts[:, table.sources], self._p_exit)

        delta = np.zeros_like(counts)
        delta[:, _S] -= new_e
        delta[:, _E] += new_e

        new_deaths = np.zeros(self.n_particles, dtype=np.int64)
        for i, src in enumerate(self._src_list):
            k = n_exit[:, i]
            if not k.any():
                continue
            dests = table.dest_indices[i]
            death_mask = table.dest_is_death[i]
            delta[:, src] -= k
            if len(dests) == 1:
                delta[:, dests[0]] += k
                if death_mask[0]:
                    new_deaths += k
            elif len(dests) == 2:
                # Two-way categorical == one complementary binomial.
                first = rng.binomial(k, table.dest_probs[i][0])
                delta[:, dests[0]] += first
                delta[:, dests[1]] += k - first
                if death_mask[0]:
                    new_deaths += first
                if death_mask[1]:
                    new_deaths += k - first
            else:
                allocated = rng.multinomial(k, table.dest_probs[i])
                delta[:, dests] += allocated
                if death_mask.any():
                    new_deaths += allocated[:, death_mask].sum(axis=1)

        counts += delta
        return new_e, new_deaths

    @shaped(returns=("(n_members,) int64", "(n_members,) int64"))
    def step_day(self) -> tuple[np.ndarray, np.ndarray]:
        """Simulate one day; return per-member (new_infections, new_deaths)."""
        thetas = self._day_thetas()
        dt = 1.0 / self.steps_per_day
        day_inf = np.zeros(self.n_particles, dtype=np.int64)
        day_dead = np.zeros(self.n_particles, dtype=np.int64)
        for _ in range(self.steps_per_day):
            inf, dead = self._substep(thetas, dt)
            day_inf += inf
            day_dead += dead
        self._day += 1
        self._cum_infections += day_inf
        self._cum_deaths += day_dead
        return day_inf, day_dead

    def run_until(self, end_day: int) -> BatchTrajectory:
        """Simulate days ``[current_day, end_day)``; return stacked outputs."""
        if end_day < self._day:
            raise ValueError(f"end_day {end_day} is before current day {self._day}")
        start = self._day
        n, n_days = self.n_particles, end_day - start
        infections = np.zeros((n, n_days))
        deaths = np.zeros((n, n_days))
        hosp = np.zeros((n, n_days))
        icu = np.zeros((n, n_days))
        for d in range(n_days):
            day_inf, day_dead = self.step_day()
            infections[:, d] = day_inf
            deaths[:, d] = day_dead
            hosp[:, d] = self._counts[:, _HOSP_COLS].sum(axis=1)
            icu[:, d] = self._counts[:, _ICU_COLS].sum(axis=1)
        return BatchTrajectory(start, infections, deaths, hosp, icu)

    # ------------------------------------------------------------------ #
    # Snapshot support
    # ------------------------------------------------------------------ #
    def state_snapshot(self) -> dict:
        """JSON-safe whole-batch snapshot (bit-exact resume via from_snapshot)."""
        return {
            "engine": self.name,
            "day": self._day,
            "counts": self._counts.tolist(),
            "cum_infections": self._cum_infections.tolist(),
            "cum_deaths": self._cum_deaths.tolist(),
            "steps_per_day": self.steps_per_day,
            "seeds": self.seeds.tolist(),
            "thetas": self._thetas.tolist(),
            "rng_state": rng_state_to_jsonable(self._rng),
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict, params: DiseaseParameters, *,
                      seeds=None, thetas=None,
                      theta_schedule: PiecewiseConstant | None = None,
                      ) -> "BatchedBinomialLeapEngine":
        """Rebuild a batch engine from a whole-batch snapshot.

        With ``seeds=None`` the serialised batch stream continues bit-exactly
        (and the stored thetas are kept unless overridden); passing a new
        seed vector starts a *fresh* batch stream — the ensemble-wide
        analogue of the paper's restart knob 1.
        """
        engine = cls.__new__(cls)
        if str(snapshot.get("engine", "")) != cls.name:
            raise ValueError(
                f"snapshot is from engine {snapshot.get('engine')!r}, "
                f"expected {cls.name!r}")
        engine.params = params
        engine.steps_per_day = int(snapshot["steps_per_day"])
        if engine.steps_per_day < 1:
            raise ValueError("snapshot steps_per_day must be >= 1")
        engine.theta_schedule = theta_schedule
        stored_seeds = np.asarray(snapshot["seeds"], dtype=np.int64)
        n = stored_seeds.size
        if seeds is None:
            engine.seeds = stored_seeds
            engine._rng = rng_from_jsonable(snapshot["rng_state"])
        else:
            engine.seeds = np.array(seeds, dtype=np.int64)
            if engine.seeds.shape != (n,):
                raise ValueError("replacement seeds must match batch size")
            engine._rng = batch_generator_for(engine.seeds)
        engine._set_thetas(
            np.asarray(snapshot["thetas"], dtype=np.float64)
            if thetas is None else thetas, n)
        engine._prepare_tables()
        engine._day = int(snapshot["day"])
        engine._counts = np.asarray(snapshot["counts"], dtype=np.int64).copy()
        if engine._counts.shape != (n, N_COMPARTMENTS):
            raise ValueError("snapshot counts have wrong shape")
        engine._cum_infections = np.asarray(snapshot["cum_infections"],
                                            dtype=np.int64).copy()
        engine._cum_deaths = np.asarray(snapshot["cum_deaths"],
                                        dtype=np.int64).copy()
        return engine

    # ------------------------------------------------------------------ #
    # Per-particle interchange (scalar-format snapshots / checkpoints)
    # ------------------------------------------------------------------ #
    def particle_snapshot(self, i: int) -> dict:
        """Member ``i``'s state as a scalar ``binomial_leap`` snapshot.

        Consumable by :class:`~repro.seir.tauleap.BinomialLeapEngine` and
        :class:`~repro.seir.checkpoint.Checkpoint` unchanged; see
        :func:`leap_particle_snapshot` for the format and RNG-state
        convention.
        """
        return leap_particle_snapshot(self._day, self._counts[i],
                                      self._cum_infections[i],
                                      self._cum_deaths[i], self.steps_per_day,
                                      self.seeds[i])

    def particle_checkpoint(self, i: int) -> Checkpoint:
        """Member ``i`` as a :class:`Checkpoint` carrying its own theta."""
        params = self.params.with_updates(
            transmission_rate=float(self._thetas[i]))
        return Checkpoint(params=params, snapshot=self.particle_snapshot(i),
                          theta_schedule=None)

    @classmethod
    def from_particle_snapshots(cls, snapshots, params: DiseaseParameters, *,
                                seeds, thetas=None,
                                theta_schedule: PiecewiseConstant | None = None,
                                rng: np.random.Generator | None = None,
                                ) -> "BatchedBinomialLeapEngine":
        """Restart a batch from per-particle scalar snapshots.

        ``snapshots`` may be a sequence of scalar ``binomial_leap`` snapshot
        dicts or an already-stacked
        :class:`~repro.seir.checkpoint.StackedLeapState`.  ``seeds`` is the
        *new* seed vector (one per member, in batch order): the restart
        always begins a fresh batch stream keyed by it (or uses ``rng`` if
        supplied).
        """
        stacked = (snapshots if isinstance(snapshots, StackedLeapState)
                   else stack_leap_snapshots(list(snapshots)))
        if stacked.steps_per_day < 1:
            raise ValueError("stacked steps_per_day must be >= 1")
        seeds_arr = np.array(seeds, dtype=np.int64)
        if seeds_arr.shape != (stacked.n_particles,):
            raise ValueError("seeds must provide one entry per snapshot")
        engine = cls.__new__(cls)
        engine.params = params
        engine.steps_per_day = stacked.steps_per_day
        engine.theta_schedule = theta_schedule
        engine.seeds = seeds_arr
        engine._set_thetas(thetas, stacked.n_particles)
        engine._prepare_tables()
        engine._rng = rng if rng is not None else batch_generator_for(seeds_arr)
        engine._day = stacked.day
        engine._counts = stacked.counts.astype(np.int64, copy=True)
        engine._cum_infections = stacked.cum_infections.astype(np.int64,
                                                               copy=True)
        engine._cum_deaths = stacked.cum_deaths.astype(np.int64, copy=True)
        return engine
