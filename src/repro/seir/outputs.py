"""Trajectory outputs of the disease simulator.

A :class:`Trajectory` is the daily output record of one stochastic simulation
run: new infections (the paper's "cases" channel — the *true*, unobservable
counts), new deaths, and hospital/ICU census snapshots.  Channels are exposed
as :class:`~repro.data.series.TimeSeries` so the observation model and
likelihoods operate on one container type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.series import TimeSeries
from ..data.sources import CASES, DEATHS, HOSPITAL_CENSUS, ICU_CENSUS

__all__ = ["Trajectory", "TrajectoryBuilder"]

_CHANNELS = (CASES, DEATHS, HOSPITAL_CENSUS, ICU_CENSUS)


@dataclass(frozen=True)
class Trajectory:
    """Daily outputs of one simulation run over ``[start_day, end_day)``.

    Attributes
    ----------
    start_day:
        First simulated day in this record.
    infections:
        New infections (S -> E flux) per day; the true case channel.
    deaths:
        New deaths per day (flux into D_U + D_D).
    hospital_census:
        End-of-day occupancy of hospital (H + post-ICU) compartments.
    icu_census:
        End-of-day occupancy of ICU compartments.
    """

    start_day: int
    infections: np.ndarray
    deaths: np.ndarray
    hospital_census: np.ndarray
    icu_census: np.ndarray

    def __post_init__(self) -> None:
        arrays = {}
        n = None
        for name in ("infections", "deaths", "hospital_census", "icu_census"):
            arr = np.asarray(getattr(self, name), dtype=np.float64).copy()
            if arr.ndim != 1:
                raise ValueError(f"{name} must be 1-d")
            if n is None:
                n = arr.shape[0]
            elif arr.shape[0] != n:
                raise ValueError("trajectory channels must have equal length")
            arr.setflags(write=False)
            arrays[name] = arr
        for name, arr in arrays.items():
            object.__setattr__(self, name, arr)
        object.__setattr__(self, "start_day", int(self.start_day))

    def __len__(self) -> int:
        return int(self.infections.shape[0])

    @property
    def end_day(self) -> int:
        return self.start_day + len(self)

    # ------------------------------------------------------------------ #
    def channel_values(self, channel: str) -> np.ndarray:
        """The named channel's backing array (read-only, no copy).

        The zero-copy accessor the batched weighting path uses to stack
        thousands of segments without materialising a TimeSeries each.
        """
        mapping = {
            CASES: self.infections,
            DEATHS: self.deaths,
            HOSPITAL_CENSUS: self.hospital_census,
            ICU_CENSUS: self.icu_census,
        }
        if channel not in mapping:
            raise KeyError(f"unknown channel {channel!r}; expected one of {_CHANNELS}")
        return mapping[channel]

    def series(self, channel: str) -> TimeSeries:
        """The named output channel as a :class:`TimeSeries`."""
        return TimeSeries(self.start_day, self.channel_values(channel),
                          name=channel)

    def window(self, start_day: int, end_day: int) -> "Trajectory":
        """Slice the record to days ``[start_day, end_day)``."""
        if start_day < self.start_day or end_day > self.end_day or end_day < start_day:
            raise ValueError(
                f"window [{start_day}, {end_day}) not within "
                f"[{self.start_day}, {self.end_day})")
        lo, hi = start_day - self.start_day, end_day - self.start_day
        return Trajectory(start_day,
                          self.infections[lo:hi], self.deaths[lo:hi],
                          self.hospital_census[lo:hi], self.icu_census[lo:hi])

    def extended_by(self, other: "Trajectory") -> "Trajectory":
        """Append a continuation segment (checkpoint-restarted window)."""
        if other.start_day != self.end_day:
            raise ValueError(
                f"continuation starts at day {other.start_day}, expected {self.end_day}")
        return Trajectory(
            self.start_day,
            np.concatenate([self.infections, other.infections]),
            np.concatenate([self.deaths, other.deaths]),
            np.concatenate([self.hospital_census, other.hospital_census]),
            np.concatenate([self.icu_census, other.icu_census]),
        )

    def total_infections(self) -> float:
        return float(self.infections.sum())

    def total_deaths(self) -> float:
        return float(self.deaths.sum())

    def peak_infection_day(self) -> int:
        return self.start_day + int(np.argmax(self.infections))

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "start_day": self.start_day,
            "infections": self.infections.tolist(),
            "deaths": self.deaths.tolist(),
            "hospital_census": self.hospital_census.tolist(),
            "icu_census": self.icu_census.tolist(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Trajectory":
        return cls(start_day=int(d["start_day"]),
                   infections=np.asarray(d["infections"]),
                   deaths=np.asarray(d["deaths"]),
                   hospital_census=np.asarray(d["hospital_census"]),
                   icu_census=np.asarray(d["icu_census"]))

    @classmethod
    def empty(cls, start_day: int) -> "Trajectory":
        z = np.zeros(0)
        return cls(start_day, z, z, z, z)


@dataclass
class TrajectoryBuilder:
    """Mutable accumulator the engines append one day at a time."""

    start_day: int
    _infections: list[float] = field(default_factory=list)
    _deaths: list[float] = field(default_factory=list)
    _hospital: list[float] = field(default_factory=list)
    _icu: list[float] = field(default_factory=list)

    def append_day(self, infections: float, deaths: float,
                   hospital_census: float, icu_census: float) -> None:
        self._infections.append(float(infections))
        self._deaths.append(float(deaths))
        self._hospital.append(float(hospital_census))
        self._icu.append(float(icu_census))

    def __len__(self) -> int:
        return len(self._infections)

    def build(self) -> Trajectory:
        return Trajectory(self.start_day,
                          np.asarray(self._infections),
                          np.asarray(self._deaths),
                          np.asarray(self._hospital),
                          np.asarray(self._icu))
