"""Terminal visualisation and figure-data export."""

from .ascii import (density_grid_plot, histogram_plot, line_plot,
                    multi_line_plot, ribbon_plot)
from .export import (write_density_csv, write_json, write_ribbon_csv,
                     write_series_csv)

__all__ = [
    "line_plot", "multi_line_plot", "histogram_plot", "ribbon_plot",
    "density_grid_plot",
    "write_series_csv", "write_ribbon_csv", "write_density_csv", "write_json",
]
