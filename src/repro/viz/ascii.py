"""ASCII rendering of series, histograms, ribbons, and density grids.

This environment has no plotting stack, so the library renders its figures
as terminal text: good enough to eyeball shapes (exponential growth, ribbon
coverage, posterior concentration) and diff-able in test logs.  The exact
numeric series behind every figure goes through :mod:`repro.viz.export`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["line_plot", "multi_line_plot", "histogram_plot", "ribbon_plot",
           "density_grid_plot"]

_DEFAULT_WIDTH = 72
_DEFAULT_HEIGHT = 16


def _scale_to_rows(values: np.ndarray, height: int, lo: float, hi: float,
                   ) -> np.ndarray:
    span = hi - lo
    if span <= 0:
        return np.full(values.shape, height // 2, dtype=np.int64)
    rows = np.rint((values - lo) / span * (height - 1)).astype(np.int64)
    return np.clip(rows, 0, height - 1)


def _resample_columns(values: np.ndarray, width: int) -> np.ndarray:
    """Average-pool a series to at most ``width`` columns."""
    n = values.shape[0]
    if n <= width:
        return values
    edges = np.linspace(0, n, width + 1).astype(np.int64)
    return np.array([values[edges[i]:max(edges[i] + 1, edges[i + 1])].mean()
                     for i in range(width)])


def line_plot(values, *, title: str = "", width: int = _DEFAULT_WIDTH,
              height: int = _DEFAULT_HEIGHT, log_scale: bool = False,
              marker: str = "*") -> str:
    """Render one series as an ASCII chart string."""
    return multi_line_plot([np.asarray(values, dtype=np.float64)],
                           markers=[marker], title=title, width=width,
                           height=height, log_scale=log_scale)


def multi_line_plot(series: Sequence[np.ndarray], *,
                    markers: Sequence[str] | None = None,
                    title: str = "", width: int = _DEFAULT_WIDTH,
                    height: int = _DEFAULT_HEIGHT,
                    log_scale: bool = False) -> str:
    """Overlay several series on one chart (later series draw on top)."""
    if not series:
        raise ValueError("need at least one series")
    arrays = [np.asarray(s, dtype=np.float64) for s in series]
    markers = list(markers) if markers is not None else \
        ["*", "o", "+", "x", "#", "@"][:len(arrays)]
    if len(markers) < len(arrays):
        raise ValueError("need one marker per series")

    transformed = []
    for arr in arrays:
        vals = _resample_columns(arr, width)
        if log_scale:
            vals = np.log10(np.maximum(vals, 1e-9))
        transformed.append(vals)
    lo = min(float(v.min()) for v in transformed)
    hi = max(float(v.max()) for v in transformed)

    grid = [[" "] * width for _ in range(height)]
    for vals, marker in zip(transformed, markers):
        cols = np.linspace(0, width - 1, vals.shape[0]).astype(np.int64)
        rows = _scale_to_rows(vals, height, lo, hi)
        for c, r in zip(cols, rows):
            grid[height - 1 - int(r)][int(c)] = marker

    lo_label, hi_label = (10**lo, 10**hi) if log_scale else (lo, hi)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max {hi_label:,.1f}" + (" (log scale)" if log_scale else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append(f"min {lo_label:,.1f}")
    return "\n".join(lines)


def histogram_plot(edges, density, *, title: str = "",
                   width: int = 40) -> str:
    """Horizontal-bar histogram (one row per bin)."""
    edges_arr = np.asarray(edges, dtype=np.float64)
    dens = np.asarray(density, dtype=np.float64)
    if edges_arr.shape[0] != dens.shape[0] + 1:
        raise ValueError("need len(edges) == len(density) + 1")
    top = dens.max() if dens.size and dens.max() > 0 else 1.0
    lines = [title] if title else []
    for i, d in enumerate(dens):
        bar = "#" * int(round(d / top * width))
        lines.append(f"{edges_arr[i]:8.3f}-{edges_arr[i + 1]:8.3f} |{bar}")
    return "\n".join(lines)


def ribbon_plot(days, lower, upper, median, truth=None, *,
                title: str = "", width: int = _DEFAULT_WIDTH,
                height: int = _DEFAULT_HEIGHT, log_scale: bool = False) -> str:
    """Render a credible ribbon: band boundaries, median, optional truth dots."""
    series = [np.asarray(lower, dtype=np.float64),
              np.asarray(upper, dtype=np.float64),
              np.asarray(median, dtype=np.float64)]
    markers = [".", ".", "-"]
    if truth is not None:
        series.append(np.asarray(truth, dtype=np.float64))
        markers.append("o")
    label = title or "credible ribbon"
    days_arr = np.asarray(days)
    label += f"  (days {int(days_arr[0])}..{int(days_arr[-1])})"
    return multi_line_plot(series, markers=markers, title=label, width=width,
                           height=height, log_scale=log_scale)


def density_grid_plot(density: np.ndarray, *, title: str = "",
                      shades: str = " .:-=+*#%@") -> str:
    """Character-shaded rendering of a 2-d density (contour-plot stand-in).

    Rows are the *second* axis (to match ``numpy.histogram2d`` output where
    the first axis is x), printed top-to-bottom in decreasing y.
    """
    d = np.asarray(density, dtype=np.float64)
    if d.ndim != 2:
        raise ValueError("density must be 2-d")
    top = d.max() if d.max() > 0 else 1.0
    levels = np.minimum((d / top * (len(shades) - 1)).astype(np.int64),
                        len(shades) - 1)
    lines = [title] if title else []
    for j in range(d.shape[1] - 1, -1, -1):
        lines.append("".join(shades[levels[i, j]] for i in range(d.shape[0])))
    return "\n".join(lines)
