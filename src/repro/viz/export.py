"""CSV/JSON export of figure data.

Every figure in the paper corresponds to a set of series; these helpers
write them in the tidy layout a plotting front-end (R/ggplot as the authors
used, or matplotlib) would consume: one row per (day, series) observation or
one row per (x, y, density) grid cell.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Mapping, Sequence

import numpy as np

from ..core.posterior import TrajectoryRibbon
from ..data.series import TimeSeries

__all__ = ["write_series_csv", "write_ribbon_csv", "write_density_csv",
           "write_json"]


def write_series_csv(path: str | os.PathLike,
                     series: Mapping[str, TimeSeries]) -> None:
    """Tidy CSV of named day series: columns ``day, series, value``.

    Series may have different day ranges; every (day, name) pair present is
    written.
    """
    if not series:
        raise ValueError("no series to write")
    with open(os.fspath(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["day", "series", "value"])
        for name, ts in series.items():
            for day, value in zip(ts.days, ts.values):
                writer.writerow([int(day), name, float(value)])


def write_ribbon_csv(path: str | os.PathLike, ribbon: TrajectoryRibbon,
                     truth: TimeSeries | None = None) -> None:
    """CSV of a credible ribbon: ``day, q05, q25, q50, ..., truth``."""
    headers = ["day"] + [f"q{int(round(q * 100)):02d}" for q in ribbon.quantiles]
    if truth is not None:
        headers.append("truth")
    with open(os.fspath(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for col, day in enumerate(ribbon.days):
            row: list = [int(day)]
            row.extend(float(ribbon.bands[i, col])
                       for i in range(len(ribbon.quantiles)))
            if truth is not None:
                row.append(float(truth.value_on(int(day))))
            writer.writerow(row)


def write_density_csv(path: str | os.PathLike, x_edges: np.ndarray,
                      y_edges: np.ndarray, density: np.ndarray,
                      x_name: str = "x", y_name: str = "y") -> None:
    """CSV of a 2-d density grid: ``x_mid, y_mid, density`` per cell."""
    x = np.asarray(x_edges, dtype=np.float64)
    y = np.asarray(y_edges, dtype=np.float64)
    d = np.asarray(density, dtype=np.float64)
    if d.shape != (x.size - 1, y.size - 1):
        raise ValueError("density shape must match the edge grids")
    x_mid = 0.5 * (x[:-1] + x[1:])
    y_mid = 0.5 * (y[:-1] + y[1:])
    with open(os.fspath(path), "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_name, y_name, "density"])
        for i in range(x_mid.size):
            for j in range(y_mid.size):
                writer.writerow([float(x_mid[i]), float(y_mid[j]),
                                 float(d[i, j])])


def write_json(path: str | os.PathLike, payload: dict) -> None:
    """Pretty-printed JSON dump (summaries, experiment records)."""
    with open(os.fspath(path), "w") as fh:
        json.dump(payload, fh, indent=2, default=_jsonify)


def _jsonify(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    if isinstance(obj, Sequence) and not isinstance(obj, str):
        return list(obj)
    raise TypeError(f"not JSON-serialisable: {type(obj)!r}")
