"""Sharded dispatch of batched ensemble simulation across executor workers.

The batched engine (:class:`~repro.seir.batch_engine.BatchedBinomialLeapEngine`)
advances a whole particle cloud as one state matrix — ~18x faster than
per-particle tasks, but single-process.  This module splits each window's
structural groups into contiguous, evenly chunked sub-batches
(:func:`~repro.hpc.partition.shard_bounds`), maps the shards across any
:class:`~repro.hpc.executor.Executor`, and reassembles the stacked shard
outputs **in order**, so the calibrator and the forecaster get multi-core
scaling of the already-batched hot path without giving up batching.

Design contract
---------------
* **Per-shard RNG** — every shard is its own batch: its stream is keyed by
  the ordered seed vector of its slice
  (:meth:`~repro.seir.seeding.SeedSequenceBank.shard_simulation_generators`).
  Results are therefore bit-reproducible given ``(base_seed, shard
  layout)`` and independent of which executor (or process) runs each
  shard; different layouts agree in distribution only.
* **Lean payloads** — one :class:`ShardTask` per shard carries the shared
  structural parameters once, the slice's seed/theta vectors, and (for
  restarts) the slice of the stacked parent state — never per-particle
  dicts or JSON.  With a :class:`~repro.hpc.executor.SerialExecutor`
  nothing is pickled at all (its ``map`` calls :func:`run_shard` in
  process), which is the single-shard fast path the calibrator uses by
  default.
* **Ordered reassembly** — executors must preserve task order, but
  :func:`dispatch_shards` does not rely on it: every result echoes its
  ``shard_id`` and is placed by it, so even a misbehaving out-of-order
  backend reassembles the ensemble correctly (or fails loudly on
  duplicates/omissions).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from ..core.contracts import check_shaped
from ..seir.batch_engine import BatchTrajectory, leap_particle_snapshot
from ..seir.checkpoint import StackedLeapState, stack_leap_snapshots
from ..seir.model import batch_engine_class
from ..seir.parameters import DiseaseParameters
from ..seir.seeding import batch_generator_for
from ..seir.tauleap import transition_table_key
from .executor import CAUSE_EXCEPTION, Executor, TaskOutcome
from .faults import CAUSE_CORRUPT, RetryPolicy, ShardFailure, ShardRetryError
from .partition import shard_bounds

__all__ = ["GroupSpec", "GroupShards", "ShardTask", "ShardResult",
           "run_shard", "dispatch_shards", "simulate_groups",
           "simulate_group_sets", "structural_groups", "build_group_specs",
           "validate_shard_policy", "resolve_shard_layout"]


def validate_shard_policy(shard_size: int | None,
                          n_shards: int | str) -> None:
    """Reject malformed shard knobs (shared by config- and call-time checks)."""
    if shard_size is not None and shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if isinstance(n_shards, str):
        if n_shards != "auto":
            raise ValueError(
                f"n_shards must be 'auto' or an int >= 1, got {n_shards!r}")
    elif n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if shard_size is not None and n_shards != "auto":
        raise ValueError("pass shard_size or an explicit n_shards, not both")


def resolve_shard_layout(executor: Executor, *, shard_size: int | None = None,
                         n_shards: int | str = "auto") -> dict:
    """Validate a shard policy and resolve it against an executor.

    The single implementation of the layout policy shared by the
    calibrator and the forecaster: an explicit ``shard_size`` (members per
    shard) wins and excludes an explicit ``n_shards``; ``n_shards="auto"``
    targets one shard per executor worker (a serial executor keeps the
    single-shard in-process fast path).  Returns the keyword dict
    :func:`simulate_groups` / :func:`~repro.hpc.partition.shard_bounds`
    expect.
    """
    validate_shard_policy(shard_size, n_shards)
    if shard_size is not None:
        return {"shard_size": shard_size}
    if n_shards == "auto":
        return {"n_shards": max(1, executor.workers)}
    return {"n_shards": n_shards}


def structural_groups(params_list: Sequence[DiseaseParameters]) -> list[list[int]]:
    """Index groups sharing one batched-engine structure.

    Members of a batch must agree on everything the engine compiles or
    initialises from (population, seeding, stage structure); only the
    transmission rate is carried per member.  With the calibrator's default
    ``param_map`` (theta only) there is exactly one group.  A ``param_map``
    targeting a *structural* field with a continuous jitter makes every
    particle its own group, degrading the batched path to serial singleton
    engines — for such maps prefer a scalar engine plus a parallel
    executor.
    """
    groups: dict[tuple, list[int]] = {}
    for idx, params in enumerate(params_list):
        key = (params.population, params.initial_exposed,
               transition_table_key(params))
        groups.setdefault(key, []).append(idx)
    return list(groups.values())


# --------------------------------------------------------------------------- #
# Shard task / result (module-level and array-backed: picklable and lean)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardTask:
    """One contiguous sub-batch of a structural group, ready to simulate.

    Exactly one of ``start_day`` (fresh start from the seeding state) and
    ``state`` (restart from a slice of stacked parent checkpoints) is set.
    ``seeds`` is the shard's slice of the group's ordered seed vector and
    keys the shard's batch RNG stream.  ``engine_options`` apply to fresh
    starts only: a restart inherits its clock and ``steps_per_day`` from
    the stacked state, so restart tasks carry an empty dict.
    """

    shard_id: int
    params: DiseaseParameters
    seeds: np.ndarray
    thetas: np.ndarray
    end_day: int
    engine: str
    engine_options: dict = field(default_factory=dict)
    start_day: int | None = None
    state: StackedLeapState | None = None
    return_state: bool = True

    def __post_init__(self) -> None:
        if (self.start_day is None) == (self.state is None):
            raise ValueError("exactly one of start_day/state must be set")
        # Shared `dims` ties the two vectors to one member count; live
        # check (not decoration-time) because tasks are built on workers
        # that may inherit a different environment than the importer.
        dims: dict[str, int] = {}
        check_shaped(self.seeds, "(n_members,) int64", name="seeds",
                     dims=dims, where="ShardTask")
        check_shaped(self.thetas, "(n_members,) float64", name="thetas",
                     dims=dims, where="ShardTask")


@dataclass(frozen=True)
class ShardResult:
    """Stacked outputs of one shard, tagged for ordered reassembly."""

    shard_id: int
    batch: BatchTrajectory
    state: StackedLeapState | None

    def particle_snapshot(self, j: int) -> dict:
        """Member ``j``'s final state as a scalar ``binomial_leap`` snapshot."""
        if self.state is None:
            raise ValueError("shard was run with return_state=False")
        s = self.state
        return leap_particle_snapshot(s.day, s.counts[j], s.cum_infections[j],
                                      s.cum_deaths[j], s.steps_per_day,
                                      s.seeds[j])


def run_shard(task: ShardTask) -> ShardResult:
    """Simulate one shard (worker-side entry point; picklable).

    Builds the shard's own batch stream from its seed slice via
    :func:`~repro.seir.seeding.batch_generator_for` — the same keying
    function behind
    :meth:`~repro.seir.seeding.SeedSequenceBank.shard_simulation_generators`
    (the bank method is the parent-side front door; both sides delegate to
    the one function, which is what makes shard results a pure function of
    the task payload regardless of which process runs them).
    """
    engine_cls = batch_engine_class(task.engine)
    seeds = np.asarray(task.seeds, dtype=np.int64)
    thetas = np.asarray(task.thetas, dtype=np.float64)
    rng = batch_generator_for(seeds)
    if task.state is not None:
        engine = engine_cls.from_particle_snapshots(
            task.state, task.params, seeds=seeds, thetas=thetas, rng=rng)
    else:
        engine = engine_cls(task.params, seeds, thetas=thetas,
                            start_day=task.start_day, rng=rng,
                            **dict(task.engine_options))
    batch = engine.run_until(task.end_day)
    state = None
    if task.return_state:
        state = StackedLeapState(
            day=engine.day, steps_per_day=engine.steps_per_day,
            counts=engine.counts, cum_infections=engine.cumulative_infections,
            cum_deaths=engine.cumulative_deaths, seeds=seeds)
    return ShardResult(shard_id=task.shard_id, batch=batch, state=state)


def _result_defect(task: ShardTask, result: Any) -> str | None:
    """Why ``result`` cannot be shard ``task``'s output (``None`` = valid).

    The retry layer treats a defective echo (wrong type, wrong shard id,
    wrong member count, mismatched state seeds) as a failed attempt rather
    than poisoning the reassembled ensemble — corrupted results are a real
    failure mode when workers die mid-serialisation.
    """
    if not isinstance(result, ShardResult):
        return f"result is {type(result).__name__}, not ShardResult"
    if result.shard_id != task.shard_id:
        return f"echoed shard id {result.shard_id}, expected {task.shard_id}"
    n = len(task.seeds)
    if result.batch.n_particles != n:
        return (f"batch covers {result.batch.n_particles} members, "
                f"expected {n}")
    if task.return_state:
        if result.state is None:
            return "missing stacked state (task asked return_state=True)"
        if not np.array_equal(np.asarray(result.state.seeds, dtype=np.int64),
                              np.asarray(task.seeds, dtype=np.int64)):
            return "stacked state seeds do not match the task's seed slice"
    return None


def _dispatch_with_retry(executor: Executor, task_list: Sequence[ShardTask],
                         retry: RetryPolicy,
                         on_failure: Callable[[ShardFailure], None] | None
                         ) -> list[ShardResult]:
    """Retrying dispatch: re-execute failed shards until the budget runs out.

    Attempt ``k`` waits the policy's deterministic backoff, dispatches the
    still-pending shards via ``map_each`` (failure-isolating, per-shard
    timeout), validates every echoed result, and records a
    :class:`ShardFailure` per miss.  With ``fallback_serial`` the final
    attempt runs in-process — the degradation path when the pool itself
    died.  Bit-identical to a fault-free run: shard outputs are pure
    functions of the task payload.
    """
    ordered: list[ShardResult | None] = [None] * len(task_list)
    failures: list[ShardFailure] = []
    pending = list(range(len(task_list)))
    for attempt in range(1, retry.max_attempts + 1):
        wait = retry.backoff_for(attempt)
        if wait > 0.0:
            time.sleep(wait)
        batch = [task_list[i] for i in pending]
        serial = (retry.fallback_serial and attempt == retry.max_attempts
                  and attempt > 1)
        if serial:
            outcomes = []
            for task in batch:
                try:
                    outcomes.append(TaskOutcome(value=run_shard(task)))
                except Exception as exc:
                    outcomes.append(TaskOutcome(
                        cause=CAUSE_EXCEPTION,
                        error=f"{type(exc).__name__}: {exc}"))
        else:
            outcomes = executor.map_each(run_shard, batch,
                                         timeout=retry.timeout_seconds)
        still_pending = []
        for slot, outcome in zip(pending, outcomes):
            cause, error = outcome.cause, outcome.error
            if cause is None:
                defect = _result_defect(task_list[slot], outcome.value)
                if defect is None:
                    ordered[slot] = outcome.value
                    continue
                cause, error = CAUSE_CORRUPT, defect
            failure = ShardFailure(shard_id=task_list[slot].shard_id,
                                   attempt=attempt, cause=cause, error=error)
            failures.append(failure)
            if on_failure is not None:
                on_failure(failure)
            still_pending.append(slot)
        pending = still_pending
        if not pending:
            break
    if pending:
        lost = [task_list[i].shard_id for i in pending]
        raise ShardRetryError(
            f"shards {lost} still failing after {retry.max_attempts} "
            f"attempts; failure history: "
            + "; ".join(f"shard {f.shard_id} attempt {f.attempt} "
                        f"[{f.cause}] {f.error}" for f in failures),
            failures)
    return ordered  # type: ignore[return-value]


def dispatch_shards(executor: Executor, tasks: Sequence[ShardTask], *,
                    retry: RetryPolicy | None = None,
                    on_failure: Callable[[ShardFailure], None] | None = None
                    ) -> list[ShardResult]:
    """Map shards across the executor; return results in ``shard_id`` order.

    Reassembly is by the echoed ``shard_id``, not list position, so an
    executor that returns results out of order still yields a correctly
    ordered ensemble; duplicated or missing shards raise.

    With a :class:`~repro.hpc.faults.RetryPolicy`, failed / timed-out /
    dropped / corrupted shards are re-executed (deterministic backoff,
    serial in-process fallback on the final attempt) and each miss is
    surfaced to ``on_failure`` as a structured
    :class:`~repro.hpc.faults.ShardFailure`; exhausting the budget raises
    :class:`~repro.hpc.faults.ShardRetryError`.  Results are bit-identical
    either way — shard outputs depend only on ``(base_seed, shard
    layout)``, never on which worker or attempt produced them.
    """
    task_list = list(tasks)
    if not task_list:
        return []
    if retry is not None:
        return _dispatch_with_retry(executor, task_list, retry, on_failure)
    ordered: list[ShardResult | None] = [None] * len(task_list)
    for result in executor.map(run_shard, task_list):
        if not 0 <= result.shard_id < len(task_list):
            raise ValueError(f"executor returned unknown shard id "
                             f"{result.shard_id}")
        if ordered[result.shard_id] is not None:
            raise ValueError(f"executor returned shard {result.shard_id} twice")
        ordered[result.shard_id] = result
    missing = [i for i, r in enumerate(ordered) if r is None]
    if missing:
        raise ValueError(f"executor dropped shards {missing}")
    return ordered  # type: ignore[return-value]


# --------------------------------------------------------------------------- #
# Group-level front door
# --------------------------------------------------------------------------- #
def build_group_specs(groups: Sequence[Sequence[int]],
                      params_list: Sequence[DiseaseParameters],
                      seeds: Sequence[int], *,
                      start_day: int | None = None,
                      snapshots: Sequence[dict] | None = None
                      ) -> list["GroupSpec"]:
    """One :class:`GroupSpec` per structural group over parallel arrays.

    ``groups`` is :func:`structural_groups` output over ``params_list``;
    ``seeds`` is the matching per-member seed list.  Fresh starts pass
    ``start_day``; restarts pass ``snapshots`` (per-member scalar leap
    snapshot dicts, stacked **once per group** here and sliced per shard
    downstream).  Every member's theta rides in from its own params.
    """
    specs = []
    for indices in groups:
        state = None
        if snapshots is not None:
            state = stack_leap_snapshots([snapshots[i] for i in indices])
        specs.append(GroupSpec(
            params=params_list[indices[0]],
            seeds=np.array([seeds[i] for i in indices], dtype=np.int64),
            thetas=np.array([params_list[i].transmission_rate
                             for i in indices]),
            start_day=start_day, state=state))
    return specs


@dataclass(frozen=True)
class GroupSpec:
    """One structural group's simulation order (parent-side, never pickled).

    ``seeds``/``thetas`` are the group's full ordered vectors; ``start_day``
    or ``state`` selects fresh-start vs checkpoint-restart exactly as in
    :class:`ShardTask` (``state`` covers the whole group and is sliced per
    shard).
    """

    params: DiseaseParameters
    seeds: np.ndarray
    thetas: np.ndarray
    start_day: int | None = None
    state: StackedLeapState | None = None


@dataclass(frozen=True)
class GroupShards:
    """One group's shard layout and its in-order results."""

    bounds: list[tuple[int, int]]
    results: list[ShardResult]

    def member_items(self) -> Iterator[tuple[int, ShardResult, int]]:
        """Yield ``(member_index_within_group, shard_result, row)`` in order."""
        for (lo, hi), result in zip(self.bounds, self.results):
            for j in range(hi - lo):
                yield lo + j, result, j


def simulate_groups(executor: Executor, specs: Sequence[GroupSpec], *,
                    end_day: int, engine: str, engine_options: dict | None = None,
                    shard_size: int | None = None, n_shards: int | None = None,
                    return_state: bool = True,
                    retry: RetryPolicy | None = None,
                    on_failure: Callable[[ShardFailure], None] | None = None
                    ) -> list[GroupShards]:
    """Shard every group, fan the shards across the executor, reassemble.

    The workhorse behind the calibrator's batched window simulation and
    batched forecasting.  Each group is chunked by
    :func:`~repro.hpc.partition.shard_bounds` (``shard_size`` wins over
    ``n_shards``; both ``None`` → one shard per group, the serial fast
    path), all groups' shards are submitted as **one** executor map so
    workers stay busy even when group sizes are uneven, and the results
    are returned per group in member order.  ``retry``/``on_failure``
    enable fault-tolerant dispatch (see :func:`dispatch_shards`).
    """
    tasks: list[ShardTask] = []
    layouts, placements = _plan_group_tasks(
        specs, tasks, end_day=end_day, engine=engine,
        engine_options=engine_options, shard_size=shard_size,
        n_shards=n_shards, return_state=return_state)
    results = dispatch_shards(executor, tasks, retry=retry,
                              on_failure=on_failure)
    return [GroupShards(bounds=layouts[g],
                        results=[results[t] for t in placements[g]])
            for g in range(len(specs))]


def _plan_group_tasks(specs: Sequence[GroupSpec], tasks: list[ShardTask], *,
                      end_day: int, engine: str,
                      engine_options: dict | None,
                      shard_size: int | None, n_shards: int | None,
                      return_state: bool
                      ) -> tuple[list[list[tuple[int, int]]], list[list[int]]]:
    """Shard ``specs`` into :class:`ShardTask`\\ s appended onto ``tasks``.

    Returns ``(layouts, placements)``: per group, its shard bounds and the
    task ids of its shards within the shared ``tasks`` list.  Shard ids are
    positions in that list — per-shard RNG streams are keyed by the seed
    slice alone, never by the id, so planning several spec sets into one
    list (``simulate_group_sets``) leaves every shard's bits unchanged.
    """
    layouts: list[list[tuple[int, int]]] = []
    placements: list[list[int]] = []  # per group: task ids of its shards
    for spec in specs:
        seeds = np.asarray(spec.seeds, dtype=np.int64)
        thetas = np.asarray(spec.thetas, dtype=np.float64)
        bounds = shard_bounds(len(seeds), shard_size=shard_size,
                              n_shards=n_shards)
        layouts.append(bounds)
        task_ids = []
        for lo, hi in bounds:
            state = None
            if spec.state is not None:
                s = spec.state
                state = StackedLeapState(
                    day=s.day, steps_per_day=s.steps_per_day,
                    counts=s.counts[lo:hi],
                    cum_infections=s.cum_infections[lo:hi],
                    cum_deaths=s.cum_deaths[lo:hi], seeds=s.seeds[lo:hi])
            task_ids.append(len(tasks))
            tasks.append(ShardTask(
                shard_id=len(tasks), params=spec.params,
                seeds=seeds[lo:hi], thetas=thetas[lo:hi], end_day=end_day,
                engine=engine,
                engine_options=(dict(engine_options or {})
                                if spec.start_day is not None else {}),
                start_day=spec.start_day, state=state,
                return_state=return_state))
        placements.append(task_ids)
    return layouts, placements


def simulate_group_sets(executor: Executor,
                        spec_sets: Sequence[Sequence[GroupSpec]], *,
                        end_day: int, engine: str,
                        engine_options: dict | None = None,
                        shard_size: int | None = None,
                        n_shards: int | None = None,
                        return_state: bool = True,
                        retry: RetryPolicy | None = None,
                        on_failures: Sequence[
                            Callable[[ShardFailure], None] | None] | None = None
                        ) -> list[list[GroupShards]]:
    """:func:`simulate_groups` over several independent spec sets at once.

    The scenario-sweep dispatch: each element of ``spec_sets`` is one
    scenario's (or world-line's) group specs, and all sets' shards are
    flattened into **one** executor map — the flattened scenario×group
    space of the scenario-tensor design — so workers interleave shards
    from every scenario instead of draining them set-by-set.  Because a
    shard's RNG stream is keyed by its seed slice alone (shard ids are
    mere dispatch positions), every returned :class:`GroupShards` is
    bit-identical to a lone ``simulate_groups`` call over its own set
    with the same ``shard_size``/``n_shards`` policy.

    ``on_failures`` optionally routes shard-failure reports per set (same
    length as ``spec_sets``); ``retry`` is shared.  Returns one
    ``list[GroupShards]`` per input set, in order.
    """
    if on_failures is not None and len(on_failures) != len(spec_sets):
        raise ValueError(
            f"on_failures has {len(on_failures)} entries for "
            f"{len(spec_sets)} spec sets")
    tasks: list[ShardTask] = []
    set_layouts: list[list[list[tuple[int, int]]]] = []
    set_placements: list[list[list[int]]] = []
    task_owner: list[int] = []  # task id -> spec-set index
    for set_index, specs in enumerate(spec_sets):
        layouts, placements = _plan_group_tasks(
            specs, tasks, end_day=end_day, engine=engine,
            engine_options=engine_options, shard_size=shard_size,
            n_shards=n_shards, return_state=return_state)
        set_layouts.append(layouts)
        set_placements.append(placements)
        task_owner.extend([set_index] * (len(tasks) - len(task_owner)))

    on_failure: Callable[[ShardFailure], None] | None = None
    if on_failures is not None:
        sinks = list(on_failures)

        def on_failure(failure: ShardFailure) -> None:
            sink = sinks[task_owner[failure.shard_id]]
            if sink is not None:
                sink(failure)

    results = dispatch_shards(executor, tasks, retry=retry,
                              on_failure=on_failure)
    return [[GroupShards(bounds=set_layouts[s][g],
                         results=[results[t]
                                  for t in set_placements[s][g]])
             for g in range(len(spec_sets[s]))]
            for s in range(len(spec_sets))]
