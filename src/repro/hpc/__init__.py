"""HPC execution substrate: executors, MPI-like collectives, partitioning,
and sharded dispatch of batched ensemble simulation."""

from .checkpoint_io import (CheckpointStore, StoreManifest,
                            write_json_atomic)
from .executor import (Executor, ProcessExecutor, SerialExecutor,
                       TaskOutcome, ThreadExecutor, default_executor,
                       make_executor)
from .faults import (ChaosExecutor, ChaosInjectedError, CorruptedResult,
                     Fault, FaultPlan, RetryPolicy, ShardFailure,
                     ShardRetryError)
from .mpi_like import REDUCE_OPS, MpiLikeComm, SpmdError, run_spmd
from .partition import (block_partition, chunk_sizes, cyclic_partition,
                        lpt_partition, partition_bounds, shard_bounds)
from .sharding import (GroupShards, GroupSpec, ShardResult, ShardTask,
                       dispatch_shards, run_shard, simulate_groups,
                       structural_groups)
from .reduce import (allreduce_sum, logsumexp_pair, merge_logsumexp,
                     merge_weighted_mean, tree_reduce)
from .scheduler import (ScheduleResult, compare_policies, simulate_static,
                        simulate_work_stealing)

__all__ = [
    "Executor", "SerialExecutor", "ProcessExecutor", "ThreadExecutor",
    "default_executor", "make_executor", "TaskOutcome",
    "RetryPolicy", "ShardFailure", "ShardRetryError",
    "Fault", "FaultPlan", "ChaosExecutor", "ChaosInjectedError",
    "CorruptedResult",
    "MpiLikeComm", "run_spmd", "SpmdError", "REDUCE_OPS",
    "block_partition", "cyclic_partition", "chunk_sizes",
    "lpt_partition", "partition_bounds", "shard_bounds",
    "GroupSpec", "GroupShards", "ShardTask", "ShardResult",
    "run_shard", "dispatch_shards", "simulate_groups", "structural_groups",
    "tree_reduce", "logsumexp_pair", "merge_logsumexp",
    "merge_weighted_mean", "allreduce_sum",
    "ScheduleResult", "simulate_static", "simulate_work_stealing",
    "compare_policies",
    "CheckpointStore", "StoreManifest", "write_json_atomic",
]
