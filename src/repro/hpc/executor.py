"""Execution backends for embarrassingly parallel simulation ensembles.

The paper's framework "is designed to exploit the concurrency provided by HPC
resources" (section I): every prior draw's simulation is independent, so the
ensemble step is a parallel map.  The SMC driver is written once against the
:class:`Executor` protocol; backends provide serial execution (tests,
debugging), process pools (multi-core laptops / single cluster nodes), and
thread pools (useful when the mapped function releases the GIL).

An mpi4py-backed executor would satisfy the same protocol via
``MPIPoolExecutor.map``; the adapter seam is documented in DESIGN.md.  The
in-repo MPI-style communicator lives in :mod:`repro.hpc.mpi_like`.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

__all__ = ["Executor", "SerialExecutor", "ProcessExecutor", "ThreadExecutor",
           "default_executor", "make_executor", "TaskOutcome",
           "CAUSE_EXCEPTION", "CAUSE_TIMEOUT", "CAUSE_POOL_BROKEN",
           "CAUSE_DROPPED"]

# Failure causes surfaced by ``Executor.map_each`` (and reused by the retry
# layer in :mod:`repro.hpc.faults` for failures it detects itself, e.g.
# dropped or corrupted shard results).
CAUSE_EXCEPTION = "worker_exception"
CAUSE_TIMEOUT = "timeout"
CAUSE_POOL_BROKEN = "pool_broken"
CAUSE_DROPPED = "dropped"


@dataclass(frozen=True)
class TaskOutcome:
    """Result-or-failure of one task under failure-isolating dispatch.

    ``map_each`` returns one of these per task instead of raising, so a
    single crashed worker does not discard its siblings' completed work.
    ``cause is None`` means success and ``value`` holds the result;
    otherwise ``cause`` is one of the ``CAUSE_*`` constants and ``error``
    carries a human-readable detail string.
    """

    value: Any = None
    cause: str | None = None
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.cause is None


class Executor(ABC):
    """Minimal parallel-map protocol used by the calibration driver.

    Implementations must preserve input order in the returned list and
    propagate worker exceptions to the caller.
    """

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, returning results in task order."""

    @property
    @abstractmethod
    def workers(self) -> int:
        """Degree of parallelism (1 for serial)."""

    def map_each(self, fn: Callable[[Any], Any], tasks: Iterable[Any],
                 timeout: float | None = None) -> list[TaskOutcome]:
        """Failure-isolating map: one :class:`TaskOutcome` per task, in order.

        Unlike :meth:`map`, a failing task does not raise — it yields an
        outcome with ``cause`` set while its siblings' results survive.
        This is the dispatch primitive the shard retry layer
        (:mod:`repro.hpc.faults`) is built on.  ``timeout`` bounds each
        task's wait in seconds where the backend supports it (process
        pools); backends that cannot interrupt a running task ignore it.

        The default implementation funnels tasks through :meth:`map` one
        at a time, which preserves semantics (not throughput) for any
        backend that does not override it.
        """
        outcomes: list[TaskOutcome] = []
        for task in tasks:
            try:
                outcomes.append(TaskOutcome(value=self.map(fn, [task])[0]))
            except Exception as exc:
                outcomes.append(TaskOutcome(
                    cause=CAUSE_EXCEPTION,
                    error=f"{type(exc).__name__}: {exc}"))
        return outcomes

    def close(self) -> None:
        """Release backend resources; idempotent.  Default: nothing to do."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process, single-threaded execution (deterministic, debuggable)."""

    @property
    def workers(self) -> int:
        return 1

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        return [fn(t) for t in tasks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


def _auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """Chunk so each worker receives a handful of batches.

    Large chunks amortise pickling overhead (simulation tasks are small
    payloads but numerous); a factor-of-4 oversubscription keeps the pool
    load-balanced when task durations vary with epidemic size.
    """
    return max(1, n_tasks // (n_workers * 4))


class ProcessExecutor(Executor):
    """``concurrent.futures.ProcessPoolExecutor`` with sensible chunking.

    The mapped function and task payloads must be picklable, which is why
    every simulation task in :mod:`repro.sim` is a module-level function fed
    with plain tuples/dicts.
    """

    def __init__(self, max_workers: int | None = None,
                 chunksize: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers or os.cpu_count() or 1
        self._chunksize = chunksize
        self._pool: ProcessPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._max_workers

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self._max_workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a (possibly broken) cached pool; the next map rebuilds it.

        A ``BrokenProcessPool`` poisons the ``ProcessPoolExecutor``
        permanently — every later submit raises — so caching it would make
        this executor unusable for the rest of the run.  ``wait=False``
        because a broken pool has no live workers to join.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        task_list: Sequence[Any] = list(tasks)
        if not task_list:
            return []
        chunk = self._chunksize or _auto_chunksize(len(task_list), self._max_workers)
        pool = self._ensure_pool()
        try:
            return list(pool.map(fn, task_list, chunksize=chunk))
        except BrokenProcessPool:
            self._discard_pool()
            raise

    def map_each(self, fn: Callable[[Any], Any], tasks: Iterable[Any],
                 timeout: float | None = None) -> list[TaskOutcome]:
        """Submit tasks individually so failures are isolated per future.

        A worker exception marks only its own task; a dead worker
        (``BrokenProcessPool``) marks the affected tasks ``pool_broken``
        and discards the cached pool so the *next* dispatch gets a fresh
        one; ``timeout`` seconds without a result marks a task
        ``timeout`` (the stuck worker keeps running — the retry layer
        re-executes the task elsewhere, which is safe because shard
        outputs are pure functions of their payload).
        """
        task_list: Sequence[Any] = list(tasks)
        if not task_list:
            return []
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(fn, task) for task in task_list]
        except BrokenProcessPool as exc:
            self._discard_pool()
            return [TaskOutcome(cause=CAUSE_POOL_BROKEN,
                                error=f"submit failed: {exc}")
                    for _ in task_list]
        outcomes: list[TaskOutcome] = []
        broken = False
        for future in futures:
            try:
                outcomes.append(TaskOutcome(value=future.result(timeout=timeout)))
            except FuturesTimeoutError:
                future.cancel()
                outcomes.append(TaskOutcome(
                    cause=CAUSE_TIMEOUT,
                    error=f"no result within {timeout}s"))
            except BrokenProcessPool as exc:
                broken = True
                outcomes.append(TaskOutcome(
                    cause=CAUSE_POOL_BROKEN,
                    error=f"{type(exc).__name__}: {exc}"))
            except Exception as exc:
                outcomes.append(TaskOutcome(
                    cause=CAUSE_EXCEPTION,
                    error=f"{type(exc).__name__}: {exc}"))
        if broken:
            self._discard_pool()
        return outcomes

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessExecutor(max_workers={self._max_workers})"


class ThreadExecutor(Executor):
    """Thread-pool execution.

    numpy's binomial/multinomial samplers hold the GIL, so this backend only
    pays off for I/O-bound tasks (checkpoint writes); it mainly exists so the
    executor matrix in the scaling bench can show *why* process pools are the
    right backend for this workload.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._max_workers = max_workers or (os.cpu_count() or 1)
        self._pool: ThreadPoolExecutor | None = None

    @property
    def workers(self) -> int:
        return self._max_workers

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        task_list = list(tasks)
        if not task_list:
            return []
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        return list(self._pool.map(fn, task_list))

    def map_each(self, fn: Callable[[Any], Any], tasks: Iterable[Any],
                 timeout: float | None = None) -> list[TaskOutcome]:
        """Per-future dispatch; threads cannot die mid-task, so the only
        failure modes are worker exceptions and timeouts (a timed-out
        thread keeps running to completion in the background)."""
        task_list = list(tasks)
        if not task_list:
            return []
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers)
        futures = [self._pool.submit(fn, task) for task in task_list]
        outcomes: list[TaskOutcome] = []
        for future in futures:
            try:
                outcomes.append(TaskOutcome(value=future.result(timeout=timeout)))
            except FuturesTimeoutError:
                future.cancel()
                outcomes.append(TaskOutcome(
                    cause=CAUSE_TIMEOUT,
                    error=f"no result within {timeout}s"))
            except Exception as exc:
                outcomes.append(TaskOutcome(
                    cause=CAUSE_EXCEPTION,
                    error=f"{type(exc).__name__}: {exc}"))
        return outcomes

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadExecutor(max_workers={self._max_workers})"


def default_executor(n_tasks_hint: int | None = None) -> Executor:
    """Pick a backend for this machine.

    Serial for tiny workloads (pool startup costs more than it saves),
    otherwise a process pool over the available cores.
    """
    cores = os.cpu_count() or 1
    if cores == 1 or (n_tasks_hint is not None and n_tasks_hint < 32):
        return SerialExecutor()
    return ProcessExecutor(max_workers=cores)


def make_executor(spec: str, max_workers: int | None = None) -> Executor:
    """Build an executor from a config string (``serial``/``process``/``thread``)."""
    if spec == "serial":
        return SerialExecutor()
    if spec == "process":
        return ProcessExecutor(max_workers=max_workers)
    if spec == "thread":
        return ThreadExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor spec {spec!r}; "
                     "expected 'serial', 'process', or 'thread'")
