"""Parallel checkpoint storage: per-rank files plus a run manifest.

The paper checkpoints every posterior trajectory between calibration windows.
At HPC scale that is thousands of snapshot files per window, written
concurrently.  :class:`CheckpointStore` provides the directory layout,
atomic per-particle writes (safe under concurrent writers on a shared file
system), a JSON manifest for restart discovery, and bulk load of a window's
particle population.

Layout::

    <root>/
      manifest.json
      window_000/
        particle_000000.ckpt.json
        particle_000001.ckpt.json
        ...
      window_001/
        ...
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..seir.checkpoint import Checkpoint, CheckpointError

__all__ = ["CheckpointStore", "StoreManifest"]

_MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class StoreManifest:
    """Summary of what a checkpoint store currently contains."""

    run_id: str
    windows: dict[int, int]
    """Mapping window index -> number of particles stored."""

    def latest_window(self) -> int | None:
        return max(self.windows) if self.windows else None

    def to_dict(self) -> dict:
        return {"run_id": self.run_id,
                "windows": {str(k): v for k, v in self.windows.items()}}

    @classmethod
    def from_dict(cls, d: dict) -> "StoreManifest":
        return cls(run_id=str(d.get("run_id", "")),
                   windows={int(k): int(v)
                            for k, v in dict(d.get("windows", {})).items()})


class CheckpointStore:
    """File-backed store of per-particle checkpoints, grouped by window."""

    def __init__(self, root: str | os.PathLike, run_id: str = "run") -> None:
        self._root = Path(root)
        self._run_id = str(run_id)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def run_id(self) -> str:
        return self._run_id

    # ------------------------------------------------------------------ #
    def _window_dir(self, window_index: int) -> Path:
        if window_index < 0:
            raise ValueError("window_index must be >= 0")
        return self._root / f"window_{window_index:03d}"

    def _particle_path(self, window_index: int, particle_index: int) -> Path:
        if particle_index < 0:
            raise ValueError("particle_index must be >= 0")
        return self._window_dir(window_index) / f"particle_{particle_index:06d}.ckpt.json"

    def save(self, window_index: int, particle_index: int,
             checkpoint: Checkpoint) -> Path:
        """Atomically persist one particle checkpoint."""
        path = self._particle_path(window_index, particle_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        checkpoint.save(path)
        return path

    def save_window(self, window_index: int, checkpoints: list[Checkpoint]) -> None:
        """Persist a window's population and refresh the manifest."""
        for i, cp in enumerate(checkpoints):
            self.save(window_index, i, cp)
        self.write_manifest()

    def load(self, window_index: int, particle_index: int) -> Checkpoint:
        path = self._particle_path(window_index, particle_index)
        if not path.exists():
            raise CheckpointError(f"missing checkpoint {path}")
        return Checkpoint.load(path)

    def load_window(self, window_index: int) -> list[Checkpoint]:
        """Load all checkpoints of a window, ordered by particle index."""
        directory = self._window_dir(window_index)
        if not directory.is_dir():
            raise CheckpointError(f"no checkpoints stored for window {window_index}")
        paths = sorted(directory.glob("particle_*.ckpt.json"))
        return [Checkpoint.load(p) for p in paths]

    def particle_count(self, window_index: int) -> int:
        directory = self._window_dir(window_index)
        if not directory.is_dir():
            return 0
        return len(list(directory.glob("particle_*.ckpt.json")))

    # ------------------------------------------------------------------ #
    def write_manifest(self) -> StoreManifest:
        """Scan the store and atomically rewrite the manifest."""
        windows: dict[int, int] = {}
        for child in sorted(self._root.glob("window_*")):
            if child.is_dir():
                index = int(child.name.split("_", 1)[1])
                windows[index] = len(list(child.glob("particle_*.ckpt.json")))
        manifest = StoreManifest(run_id=self._run_id, windows=windows)
        fd, tmp = tempfile.mkstemp(dir=self._root, suffix=".manifest.tmp")
        with os.fdopen(fd, "w") as fh:
            json.dump(manifest.to_dict(), fh)
        os.replace(tmp, self._root / _MANIFEST_NAME)
        return manifest

    def read_manifest(self) -> StoreManifest:
        path = self._root / _MANIFEST_NAME
        if not path.exists():
            return StoreManifest(run_id=self._run_id, windows={})
        with open(path) as fh:
            return StoreManifest.from_dict(json.load(fh))

    def latest_restart_point(self) -> tuple[int, list[Checkpoint]] | None:
        """Most recent complete window for resuming an interrupted run."""
        manifest = self.write_manifest()
        latest = manifest.latest_window()
        if latest is None:
            return None
        return latest, self.load_window(latest)
