"""Parallel checkpoint storage: per-rank files plus a run manifest.

The paper checkpoints every posterior trajectory between calibration windows.
At HPC scale that is thousands of snapshot files per window, written
concurrently.  :class:`CheckpointStore` provides the directory layout,
atomic per-particle writes (safe under concurrent writers on a shared file
system), a JSON manifest for restart discovery, and bulk load of a window's
particle population.

Durability contract
-------------------
Every file is published with write-to-temp + ``fsync`` + ``os.replace``,
so a reader never sees a torn file.  Window *completeness* is a separate
concern from file atomicity: a crash mid-window leaves some particles
written and others missing, all individually valid.  The store therefore
writes a ``COMPLETE.json`` marker — recording the expected particle count —
strictly *after* a window's full population (and optional ``state.json``
metadata) has landed.  :meth:`latest_restart_point` and
:meth:`load_window_state` only trust marked windows whose expected count is
actually on disk, so an interrupted run can never resume from a torn
window.  ``run_meta.json`` pins the run's config/seed fingerprint so a
store can refuse to mix checkpoints from differently-configured runs.

Layout::

    <root>/
      manifest.json
      run_meta.json
      window_000/
        particle_000000.ckpt.json
        particle_000001.ckpt.json
        ...
        state.json         # optional window metadata (posterior, diagnostics)
        COMPLETE.json      # {"n_particles": N}, written last
      window_001/
        ...
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..seir.checkpoint import Checkpoint, CheckpointError

__all__ = ["CheckpointStore", "StoreManifest", "write_json_atomic"]

_MANIFEST_NAME = "manifest.json"
_RUN_META_NAME = "run_meta.json"
_COMPLETE_NAME = "COMPLETE.json"
_STATE_NAME = "state.json"


def write_json_atomic(path: str | os.PathLike, payload: dict, *,
                      sort_keys: bool = False) -> None:
    """Durably publish a JSON file: write-temp + ``fsync`` + ``os.replace``.

    The one atomic-publication primitive shared by the checkpoint store and
    the forecast artifact store (:mod:`repro.service.artifacts`): the temp
    file lands in the destination directory (same filesystem, so the rename
    is atomic), is fsync'd before the rename, and is unlinked on any
    failure — a reader can observe the old file or the new file, never a
    torn one.  ``sort_keys`` makes the byte stream a pure function of the
    payload (the artifact store's bit-identity contract needs that; the
    checkpoint store doesn't care).
    """
    dest = Path(path)
    dest.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=dest.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, sort_keys=sort_keys)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, dest)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


@dataclass(frozen=True)
class StoreManifest:
    """Summary of what a checkpoint store currently contains."""

    run_id: str
    windows: dict[int, int]
    """Mapping window index -> number of particles stored."""
    complete: dict[int, bool] = field(default_factory=dict)
    """Mapping window index -> whether its completion marker validates."""

    def latest_window(self) -> int | None:
        return max(self.windows) if self.windows else None

    def latest_complete_window(self) -> int | None:
        done = [w for w, ok in self.complete.items() if ok]
        return max(done) if done else None

    def to_dict(self) -> dict:
        return {"run_id": self.run_id,
                "windows": {str(k): v for k, v in self.windows.items()},
                "complete": {str(k): v for k, v in self.complete.items()}}

    @classmethod
    def from_dict(cls, d: dict) -> "StoreManifest":
        return cls(run_id=str(d.get("run_id", "")),
                   windows={int(k): int(v)
                            for k, v in dict(d.get("windows", {})).items()},
                   complete={int(k): bool(v)
                             for k, v in dict(d.get("complete", {})).items()})


class CheckpointStore:
    """File-backed store of per-particle checkpoints, grouped by window."""

    def __init__(self, root: str | os.PathLike, run_id: str = "run") -> None:
        self._root = Path(root)
        self._run_id = str(run_id)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def run_id(self) -> str:
        return self._run_id

    # ------------------------------------------------------------------ #
    def _window_dir(self, window_index: int) -> Path:
        if window_index < 0:
            raise ValueError("window_index must be >= 0")
        return self._root / f"window_{window_index:03d}"

    def _particle_path(self, window_index: int, particle_index: int) -> Path:
        if particle_index < 0:
            raise ValueError("particle_index must be >= 0")
        return self._window_dir(window_index) / f"particle_{particle_index:06d}.ckpt.json"

    def _write_json_atomic(self, path: Path, payload: dict) -> None:
        """Durably publish a JSON file (temp + fsync + atomic rename)."""
        write_json_atomic(path, payload)

    @staticmethod
    def _read_json(path: Path) -> dict | None:
        """Parse a JSON file; ``None`` when missing or unreadable.

        Unreadable metadata is treated like absent metadata (the window is
        simply not trusted) rather than an exception: restart discovery
        must keep working on a store damaged by the very crash it exists
        to survive.
        """
        if not path.exists():
            return None
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, OSError):
            return None
        return payload if isinstance(payload, dict) else None

    def save(self, window_index: int, particle_index: int,
             checkpoint: Checkpoint) -> Path:
        """Atomically persist one particle checkpoint."""
        path = self._particle_path(window_index, particle_index)
        path.parent.mkdir(parents=True, exist_ok=True)
        checkpoint.save(path)
        return path

    def save_window(self, window_index: int, checkpoints: list[Checkpoint]) -> None:
        """Persist a window's population, mark it complete, refresh manifest."""
        self.save_window_state(window_index, checkpoints, meta=None)

    def save_window_state(self, window_index: int,
                          checkpoints: list[Checkpoint],
                          meta: dict | None = None) -> None:
        """Persist a window's full population plus optional metadata.

        Crash-safe write order: particles, then ``state.json``, then the
        ``COMPLETE.json`` marker, then the manifest.  A crash at any point
        before the marker leaves the window unmarked, so restart discovery
        treats it as torn and falls back to the previous complete window.
        """
        if not checkpoints:
            raise ValueError("cannot persist an empty window")
        for i, cp in enumerate(checkpoints):
            self.save(window_index, i, cp)
        if meta is not None:
            self._write_json_atomic(self._window_dir(window_index) / _STATE_NAME,
                                    meta)
        self.mark_complete(window_index, len(checkpoints))
        self.write_manifest()

    def mark_complete(self, window_index: int, n_particles: int) -> None:
        """Publish the completion marker recording the expected count."""
        if n_particles < 1:
            raise ValueError("n_particles must be >= 1")
        self._write_json_atomic(self._window_dir(window_index) / _COMPLETE_NAME,
                                {"n_particles": int(n_particles)})

    def expected_count(self, window_index: int) -> int | None:
        """Particle count promised by the completion marker (None = unmarked)."""
        payload = self._read_json(self._window_dir(window_index) / _COMPLETE_NAME)
        if payload is None or "n_particles" not in payload:
            return None
        try:
            return int(payload["n_particles"])
        except (TypeError, ValueError):
            return None

    def window_complete(self, window_index: int) -> bool:
        """Whether the window is marked complete *and* all files exist.

        The marker alone is necessary but not sufficient: expected-count
        validation catches a marked window that later lost particle files
        (partial deletion, failed copy between file systems).
        """
        expected = self.expected_count(window_index)
        if expected is None:
            return False
        return all(self._particle_path(window_index, i).exists()
                   for i in range(expected))

    def load(self, window_index: int, particle_index: int) -> Checkpoint:
        path = self._particle_path(window_index, particle_index)
        if not path.exists():
            raise CheckpointError(f"missing checkpoint {path}")
        return Checkpoint.load(path)

    def load_window(self, window_index: int) -> list[Checkpoint]:
        """Load all checkpoints of a window, ordered by particle index."""
        directory = self._window_dir(window_index)
        if not directory.is_dir():
            raise CheckpointError(f"no checkpoints stored for window {window_index}")
        paths = sorted(directory.glob("particle_*.ckpt.json"))
        return [Checkpoint.load(p) for p in paths]

    def load_window_meta(self, window_index: int) -> dict[str, Any]:
        """The window's ``state.json`` metadata payload."""
        payload = self._read_json(self._window_dir(window_index) / _STATE_NAME)
        if payload is None:
            raise CheckpointError(
                f"no state metadata stored for window {window_index}")
        return payload

    def load_window_state(self, window_index: int
                          ) -> tuple[list[Checkpoint], dict[str, Any]]:
        """Load a *complete* window's checkpoints and metadata.

        Unlike :meth:`load_window` (which globs whatever files exist),
        this refuses torn windows: the completion marker must be present
        and every promised particle file must load.
        """
        expected = self.expected_count(window_index)
        if expected is None:
            raise CheckpointError(
                f"window {window_index} has no completion marker; "
                "refusing to load a possibly torn window")
        checkpoints = [self.load(window_index, i) for i in range(expected)]
        return checkpoints, self.load_window_meta(window_index)

    def particle_count(self, window_index: int) -> int:
        directory = self._window_dir(window_index)
        if not directory.is_dir():
            return 0
        return len(list(directory.glob("particle_*.ckpt.json")))

    def stored_windows(self) -> list[int]:
        """Indices of all windows with a directory, complete or not."""
        out = []
        for child in sorted(self._root.glob("window_*")):
            if child.is_dir():
                out.append(int(child.name.split("_", 1)[1]))
        return out

    def prune(self, keep_last: int) -> list[int]:
        """Retention GC: delete old *complete* windows, keep the newest
        ``keep_last``.

        Only sealed windows are candidates — an unsealed window directory
        is never touched (it may be mid-write by a live run, and it is the
        crash evidence a resume inspects), and the latest sealed window is
        always kept (``keep_last >= 1``) because it is the restart point.
        Batch :meth:`~repro.core.smc.SequentialCalibrator.run` resume
        restores a gapless prefix, so prune only *after* a batch run
        finishes; the streaming service resumes from the latest sealed
        window alone and can prune continuously.  Returns the deleted
        window indices (oldest first).
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        sealed = [i for i in self.stored_windows() if self.window_complete(i)]
        doomed = sealed[:-keep_last]
        for index in doomed:
            shutil.rmtree(self._window_dir(index))
        if doomed:
            self.write_manifest()
        return doomed

    # ------------------------------------------------------------------ #
    def write_run_meta(self, fingerprint: dict) -> None:
        """Durably record the run's config/seed fingerprint."""
        self._write_json_atomic(self._root / _RUN_META_NAME, fingerprint)

    def read_run_meta(self) -> dict | None:
        """The stored fingerprint, or ``None`` for a fresh store."""
        return self._read_json(self._root / _RUN_META_NAME)

    def validate_run_meta(self, fingerprint: dict) -> None:
        """Bind the store to one run configuration.

        First call on a fresh store records the fingerprint; later calls
        must match it exactly, so checkpoints written under one
        ``(base_seed, shard layout, config)`` can never silently seed a
        resume under another — which would break the bit-identical-resume
        guarantee without any detectable symptom.
        """
        existing = self.read_run_meta()
        if existing is None:
            self.write_run_meta(fingerprint)
            return
        if existing != fingerprint:
            differing = sorted(
                k for k in set(existing) | set(fingerprint)
                if existing.get(k) != fingerprint.get(k))
            raise CheckpointError(
                "checkpoint store was produced by a different run "
                f"configuration (differing keys: {differing}); resuming "
                "would not be bit-identical — use a fresh --checkpoint-dir")

    # ------------------------------------------------------------------ #
    def write_manifest(self) -> StoreManifest:
        """Scan the store and atomically rewrite the manifest."""
        windows: dict[int, int] = {}
        complete: dict[int, bool] = {}
        for index in self.stored_windows():
            windows[index] = self.particle_count(index)
            complete[index] = self.window_complete(index)
        manifest = StoreManifest(run_id=self._run_id, windows=windows,
                                 complete=complete)
        self._write_json_atomic(self._root / _MANIFEST_NAME,
                                manifest.to_dict())
        return manifest

    def read_manifest(self) -> StoreManifest:
        path = self._root / _MANIFEST_NAME
        if not path.exists():
            return StoreManifest(run_id=self._run_id, windows={})
        with open(path) as fh:
            return StoreManifest.from_dict(json.load(fh))

    def latest_restart_point(self) -> tuple[int, list[Checkpoint]] | None:
        """Most recent *complete* window for resuming an interrupted run.

        Walks stored windows newest-first and skips any without a
        validating completion marker, so a window torn by the crash being
        recovered from is never mistaken for a restart point.
        """
        self.write_manifest()
        for index in sorted(self.stored_windows(), reverse=True):
            if self.window_complete(index):
                expected = self.expected_count(index)
                assert expected is not None
                return index, [self.load(index, i) for i in range(expected)]
        return None
