"""Reduction utilities for combining per-rank results.

In a distributed run of the framework each rank computes the log-weights of
its particle block; normalising the weights requires a global log-sum-exp
reduction.  These helpers implement numerically stable streaming/tree
combinations so rank-local partial results can be merged in any association
order (the invariant the property tests check).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["tree_reduce", "logsumexp_pair", "merge_logsumexp",
           "merge_weighted_mean", "allreduce_sum"]

T = TypeVar("T")


def tree_reduce(items: Sequence[T], op: Callable[[T, T], T]) -> T:
    """Pairwise (binary-tree) reduction of a non-empty sequence.

    For an associative ``op`` this matches the result of a left fold but has
    O(log n) depth — the shape an ``MPI_Reduce`` performs across ranks.
    """
    values = list(items)
    if not values:
        raise ValueError("cannot reduce an empty sequence")
    while len(values) > 1:
        merged = [op(values[i], values[i + 1])
                  for i in range(0, len(values) - 1, 2)]
        if len(values) % 2:
            merged.append(values[-1])
        values = merged
    return values[0]


def logsumexp_pair(a: float, b: float) -> float:
    """Stable ``log(exp(a) + exp(b))`` handling ``-inf`` identities."""
    if a == -math.inf:
        return b
    if b == -math.inf:
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log1p(math.exp(lo - hi))


def merge_logsumexp(partials: Sequence[float]) -> float:
    """Tree-combine per-rank ``logsumexp`` partial results."""
    return tree_reduce(list(partials), logsumexp_pair)


def merge_weighted_mean(partials: Sequence[tuple[float, float]]) -> tuple[float, float]:
    """Combine per-rank ``(weight_total, weighted_mean)`` pairs.

    Returns the global ``(weight_total, weighted_mean)``; the merge is
    associative and commutative, so any reduction tree gives one answer.
    """
    def op(x: tuple[float, float], y: tuple[float, float]) -> tuple[float, float]:
        wx, mx = x
        wy, my = y
        w = wx + wy
        if w == 0.0:
            return (0.0, 0.0)
        return (w, (wx * mx + wy * my) / w)

    return tree_reduce(list(partials), op)


def allreduce_sum(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Elementwise tree-sum of equal-shape arrays (an ``MPI_Allreduce``)."""
    if not arrays:
        raise ValueError("cannot reduce an empty sequence")
    shape = np.asarray(arrays[0]).shape
    for a in arrays:
        if np.asarray(a).shape != shape:
            raise ValueError("allreduce_sum requires equal-shape arrays")
    return tree_reduce([np.asarray(a, dtype=np.float64) for a in arrays], np.add)
