"""Fault tolerance for sharded dispatch: retries, structured failures, chaos.

At paper scale (25,000 x 20 over many worker-hours) preempted workers,
OOM kills, and node failures are the normal case, not the exception.  This
module makes the sharded dispatch layer survive them without giving up the
repo's reproducibility contract:

* :class:`RetryPolicy` — deterministic shard retries (max attempts, linear
  backoff, per-shard timeout, serial in-process fallback on the final
  attempt).  Re-executing a shard is *provably* safe because shard outputs
  are pure functions of ``(base_seed, shard layout)`` — the per-shard RNG
  contract of :func:`~repro.seir.seeding.batch_generator_for` — never of
  which worker ran them.
* :class:`ShardFailure` / :class:`ShardRetryError` — structured failure
  records (shard id, attempt, cause) instead of an opaque pool crash.
* :class:`ChaosExecutor` + :class:`FaultPlan` — a deterministic
  fault-injection wrapper around any :class:`~repro.hpc.executor.Executor`
  that crashes, delays, drops, duplicates, or corrupts scripted (or
  seeded) ``(shard, attempt)`` dispatches, so the chaos test suite and
  ``bench_faults.py`` can assert bit-identical convergence under faults.

Seeded fault plans draw through the run's
:class:`~repro.seir.seeding.SeedSequenceBank` on a registered ancillary
purpose, so chaos randomness can never alias simulation or resampling
streams.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..seir.seeding import SeedSequenceBank, register_ancillary_purpose
from .executor import (CAUSE_DROPPED, CAUSE_TIMEOUT, Executor, TaskOutcome)

__all__ = ["RetryPolicy", "ShardFailure", "ShardRetryError",
           "Fault", "FaultPlan", "FAULT_KINDS",
           "ChaosExecutor", "ChaosInjectedError", "CorruptedResult",
           "CAUSE_CORRUPT"]

_PURPOSE_CHAOS = register_ancillary_purpose(
    "chaos_faults", 40, description="seeded fault-plan draws (chaos testing)")

#: Failure cause recorded when a shard echoes a malformed/corrupted result.
CAUSE_CORRUPT = "corrupt_result"


# --------------------------------------------------------------------------- #
# Retry policy and structured failures
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic shard-retry policy.

    ``max_attempts`` bounds dispatches per shard (1 = no retries, the
    legacy strict behaviour plus structured errors).  ``backoff_seconds``
    is a *linear deterministic* backoff — attempt ``k`` waits
    ``backoff_seconds * (k - 1)`` before dispatch, no jitter, so retried
    runs have reproducible scheduling.  ``timeout_seconds`` bounds each
    shard's wait per attempt where the executor supports it.  With
    ``fallback_serial`` the final attempt runs shards in-process instead
    of on the pool — graceful degradation when the pool itself is the
    casualty.  None of this can change results: shard outputs depend only
    on the task payload, so a retried/relocated shard is bit-identical.
    """

    max_attempts: int = 3
    timeout_seconds: float | None = None
    backoff_seconds: float = 0.0
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive when set")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")

    def backoff_for(self, attempt: int) -> float:
        """Seconds to wait before dispatch attempt ``attempt`` (1-based)."""
        return self.backoff_seconds * max(0, attempt - 1)


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard dispatch attempt (structured, not an exception)."""

    shard_id: int
    attempt: int
    cause: str
    error: str = ""


class ShardRetryError(RuntimeError):
    """Raised when shards still fail after the retry budget is exhausted.

    Carries the full per-attempt failure history in ``failures`` so the
    caller (or the operator reading the traceback) sees every shard id,
    attempt number, and cause, not just the last straw.
    """

    def __init__(self, message: str,
                 failures: Sequence[ShardFailure] = ()) -> None:
        super().__init__(message)
        self.failures: tuple[ShardFailure, ...] = tuple(failures)


# --------------------------------------------------------------------------- #
# Deterministic fault injection
# --------------------------------------------------------------------------- #
#: Injectable fault kinds:
#: ``crash``      worker raises (a deterministic worker exception),
#: ``hard_exit``  worker process dies mid-task (BrokenProcessPool on pools;
#:                degrades to a raise under in-process executors),
#: ``timeout``    the dispatch never returns within the attempt,
#: ``delay``      the task sleeps ``delay_seconds`` then succeeds,
#: ``drop``       the result vanishes (dispatched but never returned),
#: ``duplicate``  the result is returned twice (ordered-``map`` path only),
#: ``corrupt``    the result is replaced with a :class:`CorruptedResult`.
FAULT_KINDS = ("crash", "hard_exit", "timeout", "delay", "drop",
               "duplicate", "corrupt")

#: Kinds injected on the worker side of the dispatch (must ride the payload).
_WORKER_KINDS = frozenset({"crash", "hard_exit", "delay"})
#: Kinds injected on the parent side, before/after the actual dispatch.
_PARENT_SKIP_KINDS = frozenset({"timeout", "drop"})


class ChaosInjectedError(RuntimeError):
    """The deterministic exception raised by injected ``crash`` faults."""


@dataclass(frozen=True)
class CorruptedResult:
    """Stand-in payload substituted for a real result by ``corrupt`` faults."""

    original: Any = None


@dataclass(frozen=True)
class Fault:
    """One scripted fault: inject ``kind`` when ``shard`` hits ``attempt``."""

    kind: str
    shard: int
    attempt: int = 1
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if self.attempt < 1:
            raise ValueError("attempt is 1-based and must be >= 1")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of faults keyed by ``(shard, attempt)``.

    Build scripted plans with :meth:`scripted` for targeted tests, or
    :meth:`seeded` for randomized-but-reproducible chaos sweeps: the plan
    is fully materialised at construction time from a
    :class:`~repro.seir.seeding.SeedSequenceBank` ancillary stream
    (purpose ``chaos_faults``), so the same ``(base_seed, rates)`` always
    injects the same faults and the plan is inspectable before the run.
    """

    faults: tuple[Fault, ...] = ()

    def fault_for(self, shard: int, attempt: int) -> Fault | None:
        """The fault scripted for this ``(shard, attempt)``, if any."""
        for fault in self.faults:
            if fault.shard == shard and fault.attempt == attempt:
                return fault
        return None

    @classmethod
    def scripted(cls, *faults: Fault) -> "FaultPlan":
        return cls(faults=tuple(faults))

    @classmethod
    def seeded(cls, base_seed: int, *, n_shards: int,
               rates: Mapping[str, float], max_attempts: int = 1,
               delay_seconds: float = 0.01) -> "FaultPlan":
        """Draw a reproducible plan: each ``(shard, attempt)`` cell gets at
        most one fault, kind ``k`` with probability ``rates[k]``.

        Draw order is fixed (shard-major, then attempt, one uniform per
        cell) so the plan depends only on ``(base_seed, n_shards,
        max_attempts, rates)``.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        kinds = [(kind, float(rates[kind])) for kind in FAULT_KINDS
                 if kind in rates]
        unknown = set(rates) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds in rates: {sorted(unknown)}")
        if sum(rate for _, rate in kinds) > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        rng = SeedSequenceBank(base_seed).ancillary_generator(_PURPOSE_CHAOS)
        faults = []
        for shard in range(n_shards):
            for attempt in range(1, max_attempts + 1):
                u = float(rng.random())
                cum = 0.0
                for kind, rate in kinds:
                    cum += rate
                    if u < cum:
                        faults.append(Fault(kind=kind, shard=shard,
                                            attempt=attempt,
                                            delay_seconds=delay_seconds))
                        break
        return cls(faults=tuple(faults))


@dataclass(frozen=True)
class _ChaosCall:
    """Worker-side payload: the real call plus its injected fault, if any.

    A module-level dataclass (not a closure) so process pools can pickle
    it; ``parent_pid`` lets ``hard_exit`` distinguish a genuine child
    process (kill it, producing a real ``BrokenProcessPool``) from
    in-process execution (raise instead, so serial/thread runs degrade to
    an ordinary worker exception rather than killing the test process).
    """

    fn: Callable[[Any], Any]
    task: Any
    kind: str = ""
    delay_seconds: float = 0.0
    parent_pid: int = 0


def _chaos_run(call: _ChaosCall) -> Any:
    """Execute one chaos call (module-level: picklable worker entry)."""
    if call.kind == "crash":
        raise ChaosInjectedError("chaos: injected worker crash")
    if call.kind == "hard_exit":
        if call.parent_pid and os.getpid() != call.parent_pid:
            os._exit(1)
        raise ChaosInjectedError(
            "chaos: injected worker loss (in-process degrade)")
    if call.kind == "delay" and call.delay_seconds > 0:
        time.sleep(call.delay_seconds)
    return call.fn(call.task)


class ChaosExecutor(Executor):
    """Deterministic fault-injection wrapper around any executor.

    Each dispatched task is keyed by its ``shard_id`` attribute (falling
    back to its position in the submitted batch) and a cumulative
    per-key dispatch counter — the "attempt" seen by the
    :class:`FaultPlan`, which lines up with the retry layer's attempt
    numbering because every retry re-dispatches the shard through this
    wrapper.  Faults actually injected are appended to :attr:`injected`
    for test assertions.

    ``map`` (the strict ordered path) models ``timeout`` like ``drop``
    (the result never comes back) and supports ``duplicate``; ``map_each``
    surfaces ``timeout``/``drop`` as failed outcomes and ignores
    ``duplicate`` (one outcome per task by construction).
    """

    def __init__(self, inner: Executor, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._dispatch_counts: dict[int, int] = {}
        self.injected: list[Fault] = []

    @property
    def workers(self) -> int:
        return self._inner.workers

    def close(self) -> None:
        self._inner.close()

    def reset(self) -> None:
        """Forget dispatch counts (reuse one wrapper across runs)."""
        self._dispatch_counts.clear()
        self.injected.clear()

    def _decide(self, task: Any, index: int) -> Fault | None:
        key = int(getattr(task, "shard_id", index))
        attempt = self._dispatch_counts.get(key, 0) + 1
        self._dispatch_counts[key] = attempt
        fault = self._plan.fault_for(key, attempt)
        if fault is not None:
            self.injected.append(fault)
        return fault

    def _calls(self, fn: Callable[[Any], Any], task_list: Sequence[Any],
               faults: Sequence[Fault | None]) -> tuple[list[int], list[_ChaosCall]]:
        """Dispatchable task indices and their worker payloads."""
        pid = os.getpid()
        indices = []
        calls = []
        for i, (task, fault) in enumerate(zip(task_list, faults)):
            if fault is not None and fault.kind in _PARENT_SKIP_KINDS:
                continue
            kind = fault.kind if fault is not None and \
                fault.kind in _WORKER_KINDS else ""
            delay = fault.delay_seconds if fault is not None else 0.0
            indices.append(i)
            calls.append(_ChaosCall(fn=fn, task=task, kind=kind,
                                    delay_seconds=delay, parent_pid=pid))
        return indices, calls

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        task_list = list(tasks)
        faults = [self._decide(t, i) for i, t in enumerate(task_list)]
        _, calls = self._calls(fn, task_list, faults)
        results = iter(self._inner.map(_chaos_run, calls))
        out: list[Any] = []
        for fault in faults:
            if fault is not None and fault.kind in _PARENT_SKIP_KINDS:
                continue
            value = next(results)
            if fault is not None and fault.kind == "corrupt":
                value = CorruptedResult(original=value)
            out.append(value)
            if fault is not None and fault.kind == "duplicate":
                out.append(value)
        return out

    def map_each(self, fn: Callable[[Any], Any], tasks: Iterable[Any],
                 timeout: float | None = None) -> list[TaskOutcome]:
        task_list = list(tasks)
        faults = [self._decide(t, i) for i, t in enumerate(task_list)]
        indices, calls = self._calls(fn, task_list, faults)
        inner = self._inner.map_each(_chaos_run, calls, timeout=timeout)
        outcomes: list[TaskOutcome | None] = [None] * len(task_list)
        for i, outcome in zip(indices, inner):
            fault = faults[i]
            if fault is not None and fault.kind == "corrupt" and outcome.ok:
                outcome = TaskOutcome(
                    value=CorruptedResult(original=outcome.value))
            outcomes[i] = outcome
        for i, fault in enumerate(faults):
            if outcomes[i] is None:
                assert fault is not None
                cause = CAUSE_TIMEOUT if fault.kind == "timeout" else CAUSE_DROPPED
                outcomes[i] = TaskOutcome(cause=cause,
                                          error=f"chaos injected {fault.kind}")
        return [o for o in outcomes if o is not None]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChaosExecutor({self._inner!r}, faults={len(self._plan.faults)})"
