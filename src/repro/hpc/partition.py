"""Work partitioning utilities for distributing ensembles over ranks.

These mirror the decompositions an MPI implementation of the paper's
framework would use: block and cyclic index partitions for homogeneous
simulation tasks, and a longest-processing-time (LPT) partition for
heterogeneous ones (late-epidemic windows cost more than early ones because
event counts scale with prevalence).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = ["block_partition", "cyclic_partition", "chunk_sizes",
           "lpt_partition", "partition_bounds", "shard_bounds"]


def _validate(n_items: int, n_parts: int) -> None:
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")


def chunk_sizes(n_items: int, n_parts: int) -> list[int]:
    """Sizes of a balanced block split: sizes differ by at most one.

    The first ``n_items % n_parts`` parts receive the extra item, matching
    the convention of ``MPI_Scatterv`` examples.
    """
    _validate(n_items, n_parts)
    base, extra = divmod(n_items, n_parts)
    return [base + (1 if i < extra else 0) for i in range(n_parts)]


def partition_bounds(n_items: int, n_parts: int) -> list[tuple[int, int]]:
    """Half-open ``(start, end)`` index bounds of each block."""
    sizes = chunk_sizes(n_items, n_parts)
    bounds = []
    start = 0
    for size in sizes:
        bounds.append((start, start + size))
        start += size
    return bounds


def shard_bounds(n_items: int, *, shard_size: int | None = None,
                 n_shards: int | None = None) -> list[tuple[int, int]]:
    """Half-open shard bounds for splitting an ordered batch across workers.

    The shard layout contract shared by the calibrator's sharded batched
    simulation and batched forecasting: contiguous, evenly chunked (sizes
    differ by at most one), and **never empty** — when ``n_shards`` exceeds
    ``n_items`` the part count is clamped to ``n_items``, so every shard
    carries at least one member and a degenerate layout can never produce
    an empty batch engine.

    Exactly one sizing mode applies:

    * ``shard_size`` — target members per shard; the part count is
      ``ceil(n_items / shard_size)`` and even chunking guarantees no shard
      exceeds ``shard_size``.
    * ``n_shards`` — explicit part count (clamped to ``n_items``).

    With neither set, one shard covers everything.  ``n_items == 0``
    returns no shards at all.
    """
    if shard_size is not None and n_shards is not None:
        raise ValueError("pass shard_size or n_shards, not both")
    if shard_size is not None and shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    if n_shards is not None and n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    if n_items < 0:
        raise ValueError("n_items must be >= 0")
    if n_items == 0:
        return []
    if shard_size is not None:
        n_parts = -(-n_items // shard_size)
    else:
        n_parts = n_shards if n_shards is not None else 1
    return partition_bounds(n_items, min(n_parts, n_items))


def block_partition(n_items: int, n_parts: int) -> list[np.ndarray]:
    """Contiguous index blocks, one per part (possibly empty)."""
    return [np.arange(lo, hi) for lo, hi in partition_bounds(n_items, n_parts)]


def cyclic_partition(n_items: int, n_parts: int) -> list[np.ndarray]:
    """Round-robin index assignment (part ``p`` gets ``p, p+P, p+2P, ...``).

    Cyclic assignment statistically balances task-cost gradients (e.g. prior
    draws sorted by transmission rate) without needing cost estimates.
    """
    _validate(n_items, n_parts)
    return [np.arange(p, n_items, n_parts) for p in range(n_parts)]


def lpt_partition(costs: npt.ArrayLike, n_parts: int) -> list[np.ndarray]:
    """Longest-processing-time-first assignment by estimated task cost.

    Greedy 4/3-approximate makespan minimisation: sort tasks by decreasing
    cost, repeatedly assign to the currently lightest part.  Returns index
    arrays per part (each sorted ascending for deterministic downstream
    iteration).
    """
    cost_arr = np.asarray(costs, dtype=np.float64)
    if cost_arr.ndim != 1:
        raise ValueError("costs must be 1-d")
    if np.any(cost_arr < 0):
        raise ValueError("costs must be non-negative")
    _validate(len(cost_arr), n_parts)

    order = np.argsort(-cost_arr, kind="stable")
    loads = np.zeros(n_parts)
    buckets: list[list[int]] = [[] for _ in range(n_parts)]
    for idx in order:
        target = int(np.argmin(loads))
        buckets[target].append(int(idx))
        loads[target] += cost_arr[idx]
    return [np.array(sorted(b), dtype=np.int64) for b in buckets]
