"""MPI-style SPMD execution on local processes.

The paper runs its ensembles on Argonne cluster resources; this module
substitutes a local, dependency-free stand-in that preserves the programming
model: a function ``f(comm, *args)`` is launched on ``size`` ranks, each a
separate OS process, communicating through collective operations with MPI
semantics (``bcast``, ``scatter``, ``gather``, ``allgather``, ``allreduce``,
``barrier``).  Code written against :class:`MpiLikeComm` maps line-for-line
onto ``mpi4py.MPI.Comm`` (lowercase, pickle-based object API) — the adapter
needed to run on a real cluster is a constructor swap.

Implementation: a coordinator thread in the parent process services one
collective at a time.  Every rank posts ``(generation, rank, op, payload)``
to a shared request queue; once all ``size`` requests for a generation have
arrived the coordinator validates that ranks agree on the operation
(mismatched collectives — a classic MPI deadlock — raise immediately instead
of hanging) and posts each rank's response to its private queue.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import Any, Callable, Sequence

from .reduce import logsumexp_pair

__all__ = ["MpiLikeComm", "run_spmd", "SpmdError", "REDUCE_OPS"]

_DEFAULT_TIMEOUT = 120.0

#: Reduction operators available to :meth:`MpiLikeComm.allreduce`.
REDUCE_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
    "prod": lambda a, b: a * b,
    "logsumexp": logsumexp_pair,
}


class SpmdError(RuntimeError):
    """A rank raised, or ranks disagreed on the collective being executed."""


class MpiLikeComm:
    """Rank-side communicator handle (constructed by :func:`run_spmd`)."""

    def __init__(self, rank: int, size: int, request_queue: "mp.Queue",
                 response_queue: "mp.Queue", timeout: float = _DEFAULT_TIMEOUT) -> None:
        self._rank = int(rank)
        self._size = int(size)
        self._requests = request_queue
        self._responses = response_queue
        self._generation = 0
        self._timeout = timeout

    @property
    def rank(self) -> int:
        """This process's rank in ``[0, size)``."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self._size

    # ------------------------------------------------------------------ #
    def _collective(self, op: str, payload: Any) -> Any:
        self._generation += 1
        self._requests.put((self._generation, self._rank, op, payload))
        kind, value = self._responses.get(timeout=self._timeout)
        if kind == "error":
            raise SpmdError(value)
        return value

    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        self._collective("barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root``; returns the root's object everywhere."""
        self._check_root(root)
        return self._collective("bcast", {"root": root, "obj": obj})

    def scatter(self, chunks: Sequence[Any] | None, root: int = 0) -> Any:
        """Distribute ``chunks[i]`` to rank ``i``.

        ``chunks`` must have exactly ``size`` entries on the root and is
        ignored elsewhere (pass ``None`` by convention).
        """
        self._check_root(root)
        if self._rank == root:
            if chunks is None or len(chunks) != self._size:
                raise ValueError(
                    f"scatter on root needs exactly {self._size} chunks")
            payload = {"root": root, "chunks": list(chunks)}
        else:
            payload = {"root": root, "chunks": None}
        return self._collective("scatter", payload)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Collect every rank's object on ``root`` (rank order); None elsewhere."""
        self._check_root(root)
        return self._collective("gather", {"root": root, "obj": obj})

    def allgather(self, obj: Any) -> list[Any]:
        """Collect every rank's object on *all* ranks (rank order)."""
        return self._collective("allgather", {"obj": obj})

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        """Reduce values across ranks with ``op``; result on all ranks.

        ``op`` is one of :data:`REDUCE_OPS` (includes ``logsumexp`` for
        distributed weight normalisation).
        """
        if op not in REDUCE_OPS:
            raise ValueError(f"unknown reduce op {op!r}; choose from {sorted(REDUCE_OPS)}")
        return self._collective("allreduce", {"op": op, "value": value})

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self._size:
            raise ValueError(f"root {root} out of range for size {self._size}")


# --------------------------------------------------------------------------- #
# Coordinator (parent side)
# --------------------------------------------------------------------------- #
def _coordinate(size: int, request_queue: "mp.Queue",
                response_queues: list["mp.Queue"], timeout: float) -> None:
    """Service collectives until every rank has sent its 'done' message."""
    finished = 0
    pending: dict[int, dict[int, tuple[str, Any]]] = {}
    while finished < size:
        generation, rank, op, payload = request_queue.get(timeout=timeout)
        if op == "done":
            finished += 1
            continue
        slot = pending.setdefault(generation, {})
        slot[rank] = (op, payload)
        if len(slot) < size:
            continue
        del pending[generation]
        ops = {entry[0] for entry in slot.values()}
        if len(ops) != 1:
            message = f"ranks disagree on collective at generation {generation}: {sorted(ops)}"
            for q in response_queues:
                q.put(("error", message))
            continue
        try:
            results = _execute_collective(op, slot, size)
        except Exception as exc:  # propagate to all ranks, keep serving
            for q in response_queues:
                q.put(("error", f"collective {op!r} failed: {exc}"))
            continue
        for r in range(size):
            response_queues[r].put(("ok", results[r]))


def _execute_collective(op: str, slot: dict[int, tuple[str, Any]],
                        size: int) -> list[Any]:
    payloads = {rank: payload for rank, (_, payload) in slot.items()}
    if op == "barrier":
        return [None] * size
    if op == "bcast":
        root = payloads[0]["root"]
        obj = payloads[root]["obj"]
        return [obj] * size
    if op == "scatter":
        root = payloads[0]["root"]
        chunks = payloads[root]["chunks"]
        if chunks is None or len(chunks) != size:
            raise ValueError("scatter root did not supply one chunk per rank")
        return [chunks[r] for r in range(size)]
    if op == "gather":
        root = payloads[0]["root"]
        gathered = [payloads[r]["obj"] for r in range(size)]
        return [gathered if r == root else None for r in range(size)]
    if op == "allgather":
        gathered = [payloads[r]["obj"] for r in range(size)]
        return [list(gathered) for _ in range(size)]
    if op == "allreduce":
        name = payloads[0]["op"]
        reducer = REDUCE_OPS[name]
        values = [payloads[r]["value"] for r in range(size)]
        acc = values[0]
        for v in values[1:]:
            acc = reducer(acc, v)
        return [acc] * size
    raise ValueError(f"unknown collective {op!r}")


# --------------------------------------------------------------------------- #
# Worker (child side)
# --------------------------------------------------------------------------- #
def _worker_main(fn: Callable, rank: int, size: int, args: tuple,
                 request_queue: "mp.Queue", response_queue: "mp.Queue",
                 result_queue: "mp.Queue", timeout: float) -> None:
    comm = MpiLikeComm(rank, size, request_queue, response_queue, timeout)
    try:
        result = fn(comm, *args)
        result_queue.put((rank, "ok", result))
    except BaseException:
        result_queue.put((rank, "error", traceback.format_exc()))
    finally:
        request_queue.put((-1, rank, "done", None))


def run_spmd(fn: Callable, size: int, args: tuple = (),
             timeout: float = _DEFAULT_TIMEOUT) -> list[Any]:
    """Run ``fn(comm, *args)`` on ``size`` ranks; return per-rank results.

    ``fn`` must be defined at module level (it is pickled to worker
    processes).  Raises :class:`SpmdError` if any rank raises.
    """
    if size < 1:
        raise ValueError("size must be >= 1")
    ctx = mp.get_context("spawn" if mp.get_start_method(allow_none=True) == "spawn"
                         else "fork")
    request_queue: mp.Queue = ctx.Queue()
    response_queues: list[mp.Queue] = [ctx.Queue() for _ in range(size)]
    result_queue: mp.Queue = ctx.Queue()

    procs = [
        ctx.Process(target=_worker_main,
                    args=(fn, rank, size, tuple(args), request_queue,
                          response_queues[rank], result_queue, timeout),
                    daemon=True)
        for rank in range(size)
    ]
    for p in procs:
        p.start()
    try:
        _coordinate(size, request_queue, response_queues, timeout)
        results: dict[int, Any] = {}
        errors: list[str] = []
        for _ in range(size):
            rank, status, value = result_queue.get(timeout=timeout)
            if status == "error":
                errors.append(f"rank {rank}:\n{value}")
            else:
                results[rank] = value
        if errors:
            raise SpmdError("\n".join(errors))
        return [results[r] for r in range(size)]
    finally:
        for p in procs:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - defensive cleanup
                p.terminate()
