"""Dynamic load-balancing scheduler simulation.

Simulation task costs in the paper's workload are *heterogeneous*: a window
simulated at high transmission has far more events than one at low
transmission, and late windows cost more than early ones.  Static block
assignment then leaves ranks idle.  This module provides a deterministic
discrete-time simulation of three scheduling policies — static block, static
cyclic, and dynamic work stealing — so the load-balance ablation bench can
quantify makespan differences without multi-node hardware.

The simulator is also used by :func:`repro.hpc.partition.lpt_partition`
tests as an oracle for makespan accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from .partition import block_partition, cyclic_partition

__all__ = ["ScheduleResult", "simulate_static", "simulate_work_stealing",
           "compare_policies"]


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling a task set onto workers.

    Attributes
    ----------
    makespan:
        Time at which the last worker finishes.
    worker_finish_times:
        Finish time per worker.
    assignments:
        Task indices executed by each worker, in execution order.
    """

    makespan: float
    worker_finish_times: np.ndarray
    assignments: tuple[tuple[int, ...], ...]

    @property
    def imbalance(self) -> float:
        """Makespan divided by the ideal (mean) load; 1.0 is perfect."""
        total = float(self.worker_finish_times.sum())
        n = len(self.worker_finish_times)
        ideal = total / n if n else 0.0
        return self.makespan / ideal if ideal > 0 else 1.0

    @property
    def efficiency(self) -> float:
        """Fraction of worker-time spent busy (1 / imbalance)."""
        return 1.0 / self.imbalance if self.imbalance > 0 else 0.0


def _validate_costs(costs: npt.ArrayLike) -> np.ndarray:
    arr = np.asarray(costs, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("costs must be 1-d")
    if np.any(arr < 0):
        raise ValueError("costs must be non-negative")
    return arr


def simulate_static(costs: npt.ArrayLike, n_workers: int, policy: str = "block") -> ScheduleResult:
    """Execute a static partition and account worker finish times."""
    arr = _validate_costs(costs)
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if policy == "block":
        parts = block_partition(len(arr), n_workers)
    elif policy == "cyclic":
        parts = cyclic_partition(len(arr), n_workers)
    else:
        raise ValueError(f"unknown static policy {policy!r}")
    finish = np.array([float(arr[p].sum()) for p in parts])
    assignments = tuple(tuple(int(i) for i in p) for p in parts)
    makespan = float(finish.max()) if len(finish) else 0.0
    return ScheduleResult(makespan, finish, assignments)


def simulate_work_stealing(costs: npt.ArrayLike, n_workers: int, *,
                           chunk: int = 1) -> ScheduleResult:
    """Simulate a shared-queue dynamic scheduler (greedy list scheduling).

    Workers repeatedly claim the next ``chunk`` tasks from a global queue
    when they become idle — the behaviour of a master-worker EMEWS pipeline
    or a ``ProcessPoolExecutor.map`` with small chunksize.  Greedy list
    scheduling is a 2-approximation of the optimal makespan.
    """
    arr = _validate_costs(costs)
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")

    clock = np.zeros(n_workers)
    assignments: list[list[int]] = [[] for _ in range(n_workers)]
    cursor = 0
    n = len(arr)
    while cursor < n:
        worker = int(np.argmin(clock))
        claimed = list(range(cursor, min(cursor + chunk, n)))
        cursor += len(claimed)
        assignments[worker].extend(claimed)
        clock[worker] += float(arr[claimed].sum())
    makespan = float(clock.max()) if n_workers else 0.0
    return ScheduleResult(makespan, clock.copy(),
                          tuple(tuple(a) for a in assignments))


def compare_policies(costs: npt.ArrayLike, n_workers: int, *,
                     steal_chunk: int = 1) -> dict[str, ScheduleResult]:
    """Run all scheduling policies on one task set.

    Returns a dict keyed by policy name; the bench prints makespan and
    efficiency per policy.
    """
    return {
        "static_block": simulate_static(costs, n_workers, "block"),
        "static_cyclic": simulate_static(costs, n_workers, "cyclic"),
        "dynamic": simulate_work_stealing(costs, n_workers, chunk=steal_chunk),
    }
