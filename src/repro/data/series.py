"""Day-indexed time series container used throughout the library.

The paper calibrates simulated trajectories against day-indexed count data
(reported cases, deaths).  Everything that moves between the simulator, the
bias model, the likelihood, and the plotting exports is a :class:`TimeSeries`:
a contiguous run of per-day values anchored at an integer ``start_day``.

Design notes
------------
* Values are stored as a float64 ``numpy`` array.  Counts are conceptually
  integers but become fractional under averaging and quantile operations, so
  a single dtype keeps the algebra simple.
* Instances are immutable by convention: all operations return new series.
  The underlying buffer is flagged read-only to catch accidental mutation.
* Alignment is explicit.  Binary operations require identical day ranges;
  use :meth:`TimeSeries.aligned_with` or :func:`align` to intersect ranges
  first.  Silent auto-alignment hides bugs in windowed calibration code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["TimeSeries", "align", "concat"]


def _as_float_array(values: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"TimeSeries values must be 1-d, got shape {arr.shape}")
    return arr


@dataclass(frozen=True)
class TimeSeries:
    """A contiguous, day-indexed sequence of values.

    Parameters
    ----------
    start_day:
        Integer day index of the first value (day 0 is the epidemic onset in
        all paper experiments).
    values:
        Per-day values; any 1-d sequence accepted, stored as float64.
    name:
        Optional label ("cases", "deaths", ...) carried through operations
        where it is unambiguous.
    """

    start_day: int
    values: np.ndarray
    name: str = ""
    _frozen: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        arr = _as_float_array(self.values)
        arr = arr.copy()
        arr.setflags(write=False)
        object.__setattr__(self, "values", arr)
        object.__setattr__(self, "start_day", int(self.start_day))

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    @property
    def end_day(self) -> int:
        """Day index one past the final value (python-range convention)."""
        return self.start_day + len(self)

    @property
    def days(self) -> np.ndarray:
        """Integer day axis, same length as :attr:`values`."""
        return np.arange(self.start_day, self.end_day)

    def value_on(self, day: int) -> float:
        """Return the value recorded for ``day``.

        Raises
        ------
        KeyError
            If ``day`` lies outside the series range.
        """
        if not self.start_day <= day < self.end_day:
            raise KeyError(
                f"day {day} outside series range [{self.start_day}, {self.end_day})"
            )
        return float(self.values[day - self.start_day])

    # ------------------------------------------------------------------ #
    # Slicing and alignment
    # ------------------------------------------------------------------ #
    def window(self, start_day: int, end_day: int) -> "TimeSeries":
        """Slice the series to days ``[start_day, end_day)``.

        The requested range must be fully contained in the series; windowed
        calibration must never silently pad with zeros.
        """
        if start_day < self.start_day or end_day > self.end_day:
            raise ValueError(
                f"window [{start_day}, {end_day}) not contained in "
                f"[{self.start_day}, {self.end_day})"
            )
        if end_day < start_day:
            raise ValueError("window end before start")
        lo = start_day - self.start_day
        hi = end_day - self.start_day
        return TimeSeries(start_day, self.values[lo:hi], name=self.name)

    def head(self, n_days: int) -> "TimeSeries":
        """First ``n_days`` values."""
        return self.window(self.start_day, min(self.end_day, self.start_day + n_days))

    def tail(self, n_days: int) -> "TimeSeries":
        """Last ``n_days`` values."""
        return self.window(max(self.start_day, self.end_day - n_days), self.end_day)

    def aligned_with(self, other: "TimeSeries") -> tuple["TimeSeries", "TimeSeries"]:
        """Return both series restricted to their common day range."""
        lo = max(self.start_day, other.start_day)
        hi = min(self.end_day, other.end_day)
        if hi <= lo:
            raise ValueError("series do not overlap")
        return self.window(lo, hi), other.window(lo, hi)

    def _check_aligned(self, other: "TimeSeries") -> None:
        if self.start_day != other.start_day or len(self) != len(other):
            raise ValueError(
                "series not aligned: "
                f"[{self.start_day},{self.end_day}) vs [{other.start_day},{other.end_day}); "
                "call aligned_with() first"
            )

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def _binary(self, other, op: Callable[[np.ndarray, np.ndarray], np.ndarray],
                name: str = "") -> "TimeSeries":
        if isinstance(other, TimeSeries):
            self._check_aligned(other)
            return TimeSeries(self.start_day, op(self.values, other.values), name=name)
        return TimeSeries(self.start_day, op(self.values, np.float64(other)),
                          name=name or self.name)

    def __add__(self, other) -> "TimeSeries":
        return self._binary(other, np.add)

    def __sub__(self, other) -> "TimeSeries":
        return self._binary(other, np.subtract)

    def __mul__(self, other) -> "TimeSeries":
        return self._binary(other, np.multiply)

    def __truediv__(self, other) -> "TimeSeries":
        return self._binary(other, np.divide)

    def __eq__(self, other) -> bool:  # type: ignore[override]
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return (self.start_day == other.start_day
                and len(self) == len(other)
                and bool(np.array_equal(self.values, other.values)))

    def __hash__(self) -> int:
        return hash((self.start_day, self.values.tobytes()))

    def map(self, fn: Callable[[np.ndarray], np.ndarray]) -> "TimeSeries":
        """Apply an elementwise vectorised function to the values."""
        out = np.asarray(fn(self.values), dtype=np.float64)
        if out.shape != self.values.shape:
            raise ValueError("map function changed series length")
        return TimeSeries(self.start_day, out, name=self.name)

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def total(self) -> float:
        """Sum of all values."""
        return float(self.values.sum())

    def mean(self) -> float:
        return float(self.values.mean())

    def max(self) -> float:
        return float(self.values.max())

    def min(self) -> float:
        return float(self.values.min())

    def argmax_day(self) -> int:
        """Day index at which the series attains its maximum."""
        return int(self.start_day + int(np.argmax(self.values)))

    def cumulative(self) -> "TimeSeries":
        """Running sum (e.g. daily incidence -> cumulative cases)."""
        return TimeSeries(self.start_day, np.cumsum(self.values),
                          name=f"cumulative_{self.name}" if self.name else "")

    def diff(self) -> "TimeSeries":
        """First difference; inverse of :meth:`cumulative` up to the first value.

        The returned series keeps the same start day, with the first value
        equal to the original first value (i.e. a cumulative series round-trips
        through ``.diff()``).
        """
        vals = np.empty_like(self.values)
        vals[0] = self.values[0]
        np.subtract(self.values[1:], self.values[:-1], out=vals[1:])
        return TimeSeries(self.start_day, vals,
                          name=f"diff_{self.name}" if self.name else "")

    def rolling_mean(self, window: int) -> "TimeSeries":
        """Centred-left rolling mean with partial windows at the start.

        Day ``t`` receives the mean of days ``max(start, t-window+1) .. t`` —
        the convention surveillance dashboards use for 7-day averages.
        """
        if window < 1:
            raise ValueError("window must be >= 1")
        csum = np.concatenate([[0.0], np.cumsum(self.values)])
        n = len(self)
        idx_hi = np.arange(1, n + 1)
        idx_lo = np.maximum(idx_hi - window, 0)
        out = (csum[idx_hi] - csum[idx_lo]) / (idx_hi - idx_lo)
        return TimeSeries(self.start_day, out, name=self.name)

    def clip_nonnegative(self) -> "TimeSeries":
        """Clamp negative values to zero (guards subtraction artefacts)."""
        return TimeSeries(self.start_day, np.maximum(self.values, 0.0), name=self.name)

    def round_counts(self) -> "TimeSeries":
        """Round to whole counts (used before binomial thinning)."""
        return TimeSeries(self.start_day, np.rint(self.values), name=self.name)

    def shift(self, days: int) -> "TimeSeries":
        """Shift the day axis (positive = later) without touching values.

        Models reporting lag: ``observed = true.shift(lag)``.
        """
        return TimeSeries(self.start_day + int(days), self.values, name=self.name)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-safe representation."""
        return {
            "start_day": self.start_day,
            "values": [float(v) for v in self.values],
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TimeSeries":
        return cls(start_day=int(d["start_day"]), values=d["values"],
                   name=str(d.get("name", "")))

    @classmethod
    def zeros(cls, start_day: int, n_days: int, name: str = "") -> "TimeSeries":
        """A series of ``n_days`` zeros starting at ``start_day``."""
        if n_days < 0:
            raise ValueError("n_days must be >= 0")
        return cls(start_day, np.zeros(n_days), name=name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (f"TimeSeries({label} days [{self.start_day}, {self.end_day}), "
                f"n={len(self)}, total={self.total():.1f})")


def align(series: Sequence[TimeSeries]) -> list[TimeSeries]:
    """Restrict every series to the common day range of all of them."""
    if not series:
        return []
    lo = max(s.start_day for s in series)
    hi = min(s.end_day for s in series)
    if hi <= lo:
        raise ValueError("series have no common day range")
    return [s.window(lo, hi) for s in series]


def concat(first: TimeSeries, second: TimeSeries) -> TimeSeries:
    """Concatenate two series whose day ranges are exactly adjacent.

    Used when a checkpoint-restarted window trajectory is appended to the
    trajectory that produced the checkpoint.
    """
    if second.start_day != first.end_day:
        raise ValueError(
            f"cannot concat: second starts at {second.start_day}, "
            f"expected {first.end_day}"
        )
    return TimeSeries(first.start_day,
                      np.concatenate([first.values, second.values]),
                      name=first.name or second.name)
