"""Loading observation streams from CSV files.

The reproduction calibrates against synthetic truth (as the paper itself
does), but an operational deployment consumes surveillance feeds.  These
loaders accept the two obvious layouts:

* **wide**: one row per day, one column per stream
  (``day,cases,deaths``);
* **tidy**: one row per (day, stream) pair (``day,series,value``) — the
  format :func:`repro.viz.export.write_series_csv` emits, so exported
  figure data round-trips.

Missing days inside a stream's range are an error by default (silent gaps
corrupt windowed likelihoods); pass ``fill_gaps=0.0`` to impute explicitly.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping

import numpy as np

from .series import TimeSeries
from .sources import CASES, DEATHS, ObservationSet, ObservationSource
from .validation import ObservationValidationError, _value_defect

__all__ = ["load_series_csv", "load_wide_csv", "observation_set_from_csv"]

#: Default stream -> (channel, biased) wiring matching the paper's setup.
_DEFAULT_STREAMS: dict[str, tuple[str, bool]] = {
    "cases": (CASES, True),
    "deaths": (DEATHS, False),
}


def _series_from_pairs(name: str, pairs: list[tuple[int, float]],
                       fill_gaps: float | None) -> TimeSeries:
    if not pairs:
        raise ValueError(f"stream {name!r} has no rows")
    # Reject NaN / negative / non-finite values before the gap-filling
    # below, which uses NaN internally as its own missing-day sentinel.
    defects = [d for d in (_value_defect(name, day, value)
                           for day, value in pairs) if d is not None]
    if defects:
        raise ObservationValidationError(defects)
    pairs.sort(key=lambda p: p[0])
    days = [d for d, _ in pairs]
    if len(set(days)) != len(days):
        dupes = sorted({d for d in days if days.count(d) > 1})
        raise ValueError(f"stream {name!r} has duplicate days: {dupes[:5]}")
    start, end = days[0], days[-1]
    values = np.full(end - start + 1, np.nan)
    for day, value in pairs:
        values[day - start] = value
    missing = np.isnan(values)
    if missing.any():
        if fill_gaps is None:
            gap_days = (np.nonzero(missing)[0] + start).tolist()
            raise ValueError(
                f"stream {name!r} missing days {gap_days[:5]}"
                f"{'...' if len(gap_days) > 5 else ''}; pass fill_gaps= to "
                "impute explicitly")
        values[missing] = fill_gaps
    return TimeSeries(start, values, name=name)


def load_series_csv(path: str | os.PathLike, *,
                    fill_gaps: float | None = None) -> dict[str, TimeSeries]:
    """Load a tidy ``day,series,value`` CSV into named series."""
    by_name: dict[str, list[tuple[int, float]]] = {}
    with open(os.fspath(path), newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"day", "series", "value"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"tidy CSV needs columns {sorted(required)}, "
                f"got {reader.fieldnames}")
        for row in reader:
            by_name.setdefault(row["series"], []).append(
                (int(row["day"]), float(row["value"])))
    return {name: _series_from_pairs(name, pairs, fill_gaps)
            for name, pairs in by_name.items()}


def load_wide_csv(path: str | os.PathLike, *,
                  day_column: str = "day",
                  fill_gaps: float | None = None) -> dict[str, TimeSeries]:
    """Load a wide ``day,<stream>,<stream>,...`` CSV into named series.

    Empty cells are treated as gaps (see ``fill_gaps``).
    """
    with open(os.fspath(path), newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or day_column not in reader.fieldnames:
            raise ValueError(f"wide CSV needs a {day_column!r} column, "
                             f"got {reader.fieldnames}")
        streams = [c for c in reader.fieldnames if c != day_column]
        if not streams:
            raise ValueError("wide CSV has no stream columns")
        pairs: dict[str, list[tuple[int, float]]] = {s: [] for s in streams}
        for row in reader:
            day = int(row[day_column])
            for s in streams:
                cell = row[s]
                if cell is not None and cell.strip() != "":
                    pairs[s].append((day, float(cell)))
    return {name: _series_from_pairs(name, stream_pairs, fill_gaps)
            for name, stream_pairs in pairs.items()}


def observation_set_from_csv(path: str | os.PathLike, *,
                             layout: str = "wide",
                             stream_config: Mapping[str, tuple[str, bool]] | None = None,
                             fill_gaps: float | None = None) -> ObservationSet:
    """Build an :class:`ObservationSet` straight from a CSV file.

    Parameters
    ----------
    layout:
        ``"wide"`` or ``"tidy"``.
    stream_config:
        Mapping stream name -> ``(channel, biased)``; defaults to the
        paper's wiring (cases biased, deaths unbiased).  Streams in the file
        but absent from the config are rejected — silently calibrating to an
        unconfigured stream is how reporting-bias errors slip in.
    """
    if layout == "wide":
        series = load_wide_csv(path, fill_gaps=fill_gaps)
    elif layout == "tidy":
        series = load_series_csv(path, fill_gaps=fill_gaps)
    else:
        raise ValueError(f"layout must be 'wide' or 'tidy', got {layout!r}")
    config = dict(stream_config or _DEFAULT_STREAMS)
    unknown = set(series) - set(config)
    if unknown:
        raise ValueError(
            f"streams {sorted(unknown)} have no channel/bias configuration; "
            f"pass stream_config")
    sources = []
    for name, ts in series.items():
        channel, biased = config[name]
        sources.append(ObservationSource(name, ts, channel=channel,
                                         biased=biased))
    return ObservationSet.of(*sources)
