"""Piecewise-constant parameter schedules.

The paper's ground truth varies the transmission rate and the reporting
probability at discrete *horizons* (section V-A):

    theta = 0.30 on days 0-33, 0.27 on 34-47, 0.25 on 48-61, 0.40 from 62 on
    rho   = 0.60 on days 0-33, 0.70 on 34-47, 0.85 on 48-61, 0.80 from 62 on

:class:`PiecewiseConstant` encodes exactly that: a right-open step function
over integer days.  It is used by the simulator (time-varying transmission)
and by the synthetic-observation generator (time-varying reporting bias).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["PiecewiseConstant", "FIG2_THETA_SCHEDULE", "FIG2_RHO_SCHEDULE"]


@dataclass(frozen=True)
class PiecewiseConstant:
    """Right-open step function ``f(day)`` over integer days.

    Parameters
    ----------
    breakpoints:
        Strictly increasing day indices at which the value *changes*.  The
        first segment starts at ``-inf`` conceptually; a schedule with
        breakpoints ``(34, 48, 62)`` and values ``(a, b, c, d)`` evaluates to
        ``a`` for day < 34, ``b`` for 34 <= day < 48, ``c`` for 48 <= day < 62
        and ``d`` for day >= 62.
    values:
        Segment values; exactly ``len(breakpoints) + 1`` of them.
    """

    breakpoints: tuple[int, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        bps = tuple(int(b) for b in self.breakpoints)
        vals = tuple(float(v) for v in self.values)
        if len(vals) != len(bps) + 1:
            raise ValueError(
                f"need len(values) == len(breakpoints)+1, "
                f"got {len(vals)} values for {len(bps)} breakpoints"
            )
        if any(b2 <= b1 for b1, b2 in zip(bps, bps[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        object.__setattr__(self, "breakpoints", bps)
        object.__setattr__(self, "values", vals)

    @classmethod
    def constant(cls, value: float) -> "PiecewiseConstant":
        """A schedule that never changes."""
        return cls(breakpoints=(), values=(float(value),))

    @classmethod
    def from_segments(cls, segments: Sequence[tuple[int, float]]) -> "PiecewiseConstant":
        """Build from ``[(start_day, value), ...]`` with the first start ignored.

        Convenience mirroring how the paper tabulates the ground truth:
        ``[(0, 0.30), (34, 0.27), (48, 0.25), (62, 0.40)]``.
        """
        if not segments:
            raise ValueError("need at least one segment")
        starts = [int(s) for s, _ in segments]
        values = [float(v) for _, v in segments]
        return cls(breakpoints=tuple(starts[1:]), values=tuple(values))

    def __call__(self, day) -> np.ndarray | float:
        """Evaluate at an integer day or an array of days."""
        day_arr = np.asarray(day)
        idx = np.searchsorted(np.asarray(self.breakpoints), day_arr, side="right")
        out = np.asarray(self.values)[idx]
        if np.isscalar(day) or day_arr.ndim == 0:
            return float(out)
        return out

    def segment_index(self, day: int) -> int:
        """Index of the segment containing ``day``."""
        return int(np.searchsorted(np.asarray(self.breakpoints), day, side="right"))

    @property
    def n_segments(self) -> int:
        return len(self.values)

    def segment_bounds(self, horizon: int) -> list[tuple[int, int]]:
        """Day ranges ``[(start, end), ...]`` of each segment up to ``horizon``.

        The first segment is reported as starting at day 0.
        """
        edges = [0, *self.breakpoints, horizon]
        return [(edges[i], min(edges[i + 1], horizon))
                for i in range(len(edges) - 1) if edges[i] < horizon]

    def to_dict(self) -> dict:
        return {"breakpoints": list(self.breakpoints), "values": list(self.values)}

    @classmethod
    def from_dict(cls, d: dict) -> "PiecewiseConstant":
        return cls(breakpoints=tuple(d["breakpoints"]), values=tuple(d["values"]))


# --------------------------------------------------------------------------- #
# The exact ground-truth schedules of section V-A / Figure 2.
# --------------------------------------------------------------------------- #
FIG2_THETA_SCHEDULE = PiecewiseConstant(breakpoints=(34, 48, 62),
                                        values=(0.30, 0.27, 0.25, 0.40))
"""Transmission-rate schedule used to simulate the Figure 2 ground truth."""

FIG2_RHO_SCHEDULE = PiecewiseConstant(breakpoints=(34, 48, 62),
                                      values=(0.60, 0.70, 0.85, 0.80))
"""Reporting-probability schedule used to thin the Figure 2 ground truth."""
