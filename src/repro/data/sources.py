"""Observation sources and multi-stream observation sets.

The calibration in the paper conditions on one or two empirical data streams:
reported case counts alone (Fig 3, Fig 4) or cases plus deaths (Fig 5).  An
:class:`ObservationSource` is one named stream with metadata about which
simulator output channel it constrains and whether a reporting-bias model
applies.  An :class:`ObservationSet` bundles the streams and supports the
window slicing the sequential calibrator performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .series import TimeSeries

__all__ = ["ObservationSource", "ObservationSet", "CASES", "DEATHS",
           "HOSPITAL_CENSUS", "ICU_CENSUS"]

#: Canonical simulator output channel names.
CASES = "cases"
DEATHS = "deaths"
HOSPITAL_CENSUS = "hospital_census"
ICU_CENSUS = "icu_census"

_KNOWN_CHANNELS = frozenset({CASES, DEATHS, HOSPITAL_CENSUS, ICU_CENSUS})


@dataclass(frozen=True)
class ObservationSource:
    """One named empirical data stream.

    Parameters
    ----------
    name:
        Stream label, unique within an :class:`ObservationSet`.
    series:
        Day-indexed observed values.
    channel:
        Simulator output channel this stream constrains (one of
        ``cases``/``deaths``/``hospital_census``/``icu_census``).
    biased:
        Whether the binomial reporting-bias model applies to this stream.
        The paper applies it to cases but *not* to deaths (section V-C).
    """

    name: str
    series: TimeSeries
    channel: str = CASES
    biased: bool = True

    def __post_init__(self) -> None:
        if self.channel not in _KNOWN_CHANNELS:
            raise ValueError(
                f"unknown channel {self.channel!r}; expected one of {sorted(_KNOWN_CHANNELS)}"
            )
        if not self.name:
            raise ValueError("source name must be non-empty")

    def window(self, start_day: int, end_day: int) -> "ObservationSource":
        """Slice the stream to a calibration window."""
        return ObservationSource(self.name, self.series.window(start_day, end_day),
                                 channel=self.channel, biased=self.biased)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "series": self.series.to_dict(),
            "channel": self.channel,
            "biased": self.biased,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ObservationSource":
        return cls(name=d["name"], series=TimeSeries.from_dict(d["series"]),
                   channel=d["channel"], biased=bool(d["biased"]))


@dataclass(frozen=True)
class ObservationSet:
    """An ordered, name-keyed collection of observation streams."""

    sources: tuple[ObservationSource, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [s.name for s in self.sources]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate source names: {names}")
        object.__setattr__(self, "sources", tuple(self.sources))

    @classmethod
    def of(cls, *sources: ObservationSource) -> "ObservationSet":
        return cls(sources=tuple(sources))

    def __len__(self) -> int:
        return len(self.sources)

    def __iter__(self) -> Iterator[ObservationSource]:
        return iter(self.sources)

    def __contains__(self, name: str) -> bool:
        return any(s.name == name for s in self.sources)

    def __getitem__(self, name: str) -> ObservationSource:
        for s in self.sources:
            if s.name == name:
                return s
        raise KeyError(f"no observation source named {name!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.sources)

    @property
    def start_day(self) -> int:
        """Latest start day across streams (common coverage begins here)."""
        if not self.sources:
            raise ValueError("empty observation set")
        return max(s.series.start_day for s in self.sources)

    @property
    def end_day(self) -> int:
        """Earliest end day across streams (common coverage ends here)."""
        if not self.sources:
            raise ValueError("empty observation set")
        return min(s.series.end_day for s in self.sources)

    def window(self, start_day: int, end_day: int) -> "ObservationSet":
        """Slice every stream to the same calibration window."""
        return ObservationSet(tuple(s.window(start_day, end_day)
                                    for s in self.sources))

    def with_source(self, source: ObservationSource) -> "ObservationSet":
        """Return a new set with ``source`` appended."""
        return ObservationSet(self.sources + (source,))

    def series_by_name(self) -> Mapping[str, TimeSeries]:
        return {s.name: s.series for s in self.sources}

    def to_dict(self) -> dict:
        return {"sources": [s.to_dict() for s in self.sources]}

    @classmethod
    def from_dict(cls, d: dict) -> "ObservationSet":
        return cls(tuple(ObservationSource.from_dict(s) for s in d["sources"]))
