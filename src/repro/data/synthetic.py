"""Synthetic observation generation (binomial thinning of true counts).

Section V-A of the paper constructs the "empirical" data by applying the
binomial reporting-bias model (eq. 2) to trajectories of the simulator: each
true event is independently observed with probability ``rho_t``, so

    observed_t ~ Binomial(true_t, rho_t)

with ``rho_t`` following the piecewise-constant schedule of the experiment.
This module implements that thinning, the deterministic mean-thinning variant
(``observed_t = rho_t * true_t``), and an optional reporting-lag shift.
"""

from __future__ import annotations

import numpy as np

from .schedule import PiecewiseConstant
from .series import TimeSeries

__all__ = ["binomial_thin", "mean_thin", "make_observed_series"]


def _rho_per_day(series: TimeSeries, rho: float | PiecewiseConstant) -> np.ndarray:
    """Evaluate a scalar or scheduled reporting probability on the day axis."""
    if isinstance(rho, PiecewiseConstant):
        rho_arr = np.asarray(rho(series.days), dtype=np.float64)
    else:
        rho_arr = np.full(len(series), float(rho))
    if np.any((rho_arr < 0.0) | (rho_arr > 1.0)):
        raise ValueError("reporting probability must lie in [0, 1]")
    return rho_arr


def binomial_thin(series: TimeSeries, rho: float | PiecewiseConstant,
                  rng: np.random.Generator) -> TimeSeries:
    """Thin true counts with per-event observation probability ``rho``.

    Values are rounded to whole counts first (binomial needs integer trials).
    Returns a series of observed counts on the same day axis.
    """
    rho_arr = _rho_per_day(series, rho)
    n = np.rint(series.values).astype(np.int64)
    if np.any(n < 0):
        raise ValueError("cannot thin negative counts")
    observed = rng.binomial(n, rho_arr)
    return TimeSeries(series.start_day, observed.astype(np.float64),
                      name=f"observed_{series.name}" if series.name else "observed")


def mean_thin(series: TimeSeries, rho: float | PiecewiseConstant) -> TimeSeries:
    """Deterministic expectation of :func:`binomial_thin` (``rho * true``)."""
    rho_arr = _rho_per_day(series, rho)
    return TimeSeries(series.start_day, series.values * rho_arr,
                      name=f"observed_{series.name}" if series.name else "observed")


def make_observed_series(true_series: TimeSeries,
                         rho: float | PiecewiseConstant,
                         rng: np.random.Generator,
                         *,
                         reporting_lag_days: int = 0,
                         mode: str = "sample") -> TimeSeries:
    """Produce an observed stream from a true stream.

    Parameters
    ----------
    true_series:
        The unobservable true counts (simulator output).
    rho:
        Reporting probability: scalar or piecewise schedule.
    rng:
        Source of randomness for the binomial draw.
    reporting_lag_days:
        Shift observations this many days later (0 in the paper experiments).
    mode:
        ``"sample"`` for a binomial draw (the paper's construction) or
        ``"mean"`` for the deterministic expectation.
    """
    if mode == "sample":
        obs = binomial_thin(true_series, rho, rng)
    elif mode == "mean":
        obs = mean_thin(true_series, rho)
    else:
        raise ValueError(f"mode must be 'sample' or 'mean', got {mode!r}")
    if reporting_lag_days:
        obs = obs.shift(reporting_lag_days)
    return obs
