"""Data substrate: time series, schedules, observation streams, synthesis."""

from .loaders import (load_series_csv, load_wide_csv,
                      observation_set_from_csv)
from .schedule import FIG2_RHO_SCHEDULE, FIG2_THETA_SCHEDULE, PiecewiseConstant
from .series import TimeSeries, align, concat
from .sources import (CASES, DEATHS, HOSPITAL_CENSUS, ICU_CENSUS,
                      ObservationSet, ObservationSource)
from .synthetic import binomial_thin, make_observed_series, mean_thin
from .validation import (ObservationDefect, ObservationValidationError,
                         find_defects, find_row_defects, find_series_defects,
                         validate_observations)

__all__ = [
    "TimeSeries", "align", "concat",
    "PiecewiseConstant", "FIG2_THETA_SCHEDULE", "FIG2_RHO_SCHEDULE",
    "ObservationSource", "ObservationSet",
    "CASES", "DEATHS", "HOSPITAL_CENSUS", "ICU_CENSUS",
    "binomial_thin", "mean_thin", "make_observed_series",
    "load_series_csv", "load_wide_csv", "observation_set_from_csv",
    "ObservationDefect", "ObservationValidationError",
    "find_defects", "find_series_defects", "find_row_defects",
    "validate_observations",
]
