"""Observation quality checks shared by loaders, the API, and the service.

Surveillance feeds are messy: NaN placeholders, negative "correction" rows,
duplicated report dates, days arriving out of order.  Feeding any of those
to the calibrator silently corrupts windowed likelihoods (a NaN poisons a
whole window's weights; a negative count is impossible under every
likelihood family in :mod:`repro.core.likelihood`).  This module is the one
shared gate: the CSV loaders, :func:`repro.inference.calibrate`, and the
streaming service intake all funnel observations through the same defect
detector, so a bad value is rejected with the same structured record
everywhere.

:func:`find_defects` reports without raising — the streaming intake uses it
to quarantine bad rows while accepting the rest.  :func:`validate_observations`
raises an :class:`ObservationValidationError` listing every defect — the
batch paths use it because a batch run has no later chance to re-ingest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .series import TimeSeries
from .sources import ObservationSet

__all__ = ["ObservationDefect", "ObservationValidationError",
           "find_defects", "find_series_defects", "find_row_defects",
           "validate_observations"]

#: Defect reason codes (stable identifiers for logs and quarantine records).
REASON_NAN = "nan_value"
REASON_NEGATIVE = "negative_value"
REASON_NON_FINITE = "non_finite_value"
REASON_DUPLICATE_DAY = "duplicate_day"
REASON_MALFORMED = "malformed"


@dataclass(frozen=True)
class ObservationDefect:
    """One rejected observation value, with enough context to act on it.

    ``stream`` is the observation stream name, ``day`` the day index the
    value claimed (None when the day itself was unparseable), ``reason``
    one of the ``REASON_*`` codes, and ``detail`` a human-readable
    explanation including the offending value.
    """

    stream: str
    day: int | None
    reason: str
    detail: str

    def render(self) -> str:
        where = f"day {self.day}" if self.day is not None else "unknown day"
        return f"{self.stream}[{where}]: {self.reason} — {self.detail}"

    def to_dict(self) -> dict:
        return {"stream": self.stream, "day": self.day,
                "reason": self.reason, "detail": self.detail}


class ObservationValidationError(ValueError):
    """Raised when observations fail validation; carries every defect."""

    def __init__(self, defects: Sequence[ObservationDefect]) -> None:
        self.defects: tuple[ObservationDefect, ...] = tuple(defects)
        shown = [d.render() for d in self.defects[:8]]
        more = len(self.defects) - len(shown)
        message = (f"{len(self.defects)} invalid observation value(s): "
                   + "; ".join(shown)
                   + (f"; ... and {more} more" if more > 0 else ""))
        super().__init__(message)


def _value_defect(stream: str, day: int | None,
                  value: float) -> ObservationDefect | None:
    """The defect carried by one ``(day, value)`` observation, if any."""
    if math.isnan(value):
        return ObservationDefect(stream, day, REASON_NAN,
                                 "value is NaN; drop the row or impute "
                                 "explicitly")
    if math.isinf(value):
        return ObservationDefect(stream, day, REASON_NON_FINITE,
                                 f"value {value!r} is not finite")
    if value < 0:
        return ObservationDefect(stream, day, REASON_NEGATIVE,
                                 f"count {value!r} is negative; corrections "
                                 "must be folded into the affected day")
    return None


def find_series_defects(series: TimeSeries,
                        name: str | None = None) -> list[ObservationDefect]:
    """Defects in one day-indexed series (NaN / negative / non-finite)."""
    stream = name if name is not None else (series.name or "<unnamed>")
    out: list[ObservationDefect] = []
    for offset, value in enumerate(series.values):
        defect = _value_defect(stream, series.start_day + offset, float(value))
        if defect is not None:
            out.append(defect)
    return out


def find_defects(observations: ObservationSet) -> list[ObservationDefect]:
    """Every defect across an observation set's streams, in stream order."""
    out: list[ObservationDefect] = []
    for source in observations:
        out.extend(find_series_defects(source.series, name=source.name))
    return out


def find_row_defects(stream: str, rows: Iterable[tuple[object, object]],
                     seen_days: Iterable[int] = ()
                     ) -> tuple[list[tuple[int, float]], list[ObservationDefect]]:
    """Split raw ``(day, value)`` rows into accepted pairs and defects.

    The streaming intake's row-level gate: ``rows`` may carry unparseable
    day/value cells (rejected as ``malformed``), NaN/negative/non-finite
    values, or days already present in ``seen_days`` or earlier in the same
    batch (rejected as ``duplicate_day``).  Accepted pairs come back as
    ``(int day, float value)`` in input order.
    """
    accepted: list[tuple[int, float]] = []
    defects: list[ObservationDefect] = []
    days = set(int(d) for d in seen_days)
    for raw_day, raw_value in rows:
        try:
            day = int(raw_day)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            defects.append(ObservationDefect(
                stream, None, REASON_MALFORMED,
                f"day {raw_day!r} is not an integer"))
            continue
        try:
            value = float(raw_value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            defects.append(ObservationDefect(
                stream, day, REASON_MALFORMED,
                f"value {raw_value!r} is not a number"))
            continue
        defect = _value_defect(stream, day, value)
        if defect is not None:
            defects.append(defect)
            continue
        if day in days:
            defects.append(ObservationDefect(
                stream, day, REASON_DUPLICATE_DAY,
                f"day {day} was already observed for this stream"))
            continue
        days.add(day)
        accepted.append((day, value))
    return accepted, defects


def validate_observations(observations: ObservationSet) -> ObservationSet:
    """Reject observation sets carrying NaN / negative / non-finite values.

    Returns the set unchanged when clean, so batch call sites can wrap
    their input in one expression.  Raises
    :class:`ObservationValidationError` listing every defect otherwise.
    """
    defects = find_defects(observations)
    if defects:
        raise ObservationValidationError(defects)
    return observations
