"""repro — Sequential Monte Carlo UQ for stochastic epidemic models.

A from-scratch reproduction of Fadikar et al., *Towards Improved Uncertainty
Quantification of Stochastic Epidemic Models Using Sequential Monte Carlo*
(IPDPS Workshops 2024, arXiv:2402.15619): a stochastic SEIR simulator with
checkpoint/restart, a binomial reporting-bias observation model, a sequential
importance sampling calibrator over time windows, and an HPC-style parallel
execution layer.

Quickstart::

    from repro import make_fig2_ground_truth, calibrate, CalibrationConfig

    truth = make_fig2_ground_truth()
    result = calibrate(truth.observations(include_deaths=True),
                       CalibrationConfig(n_parameter_draws=200))
    print(result.describe())

Subpackages
-----------
``repro.core``
    The SMC/SIS framework (particles, weights, resampling, priors,
    proposals, likelihoods, bias model, windows, calibrator).
``repro.seir``
    Stochastic SEIR simulator: three engines, checkpointing, parameters.
``repro.hpc``
    Executors, MPI-like collectives, partitioning, schedulers, stores.
``repro.data``
    Time series, schedules, observation streams, synthetic observations.
``repro.sim``
    Ground-truth factory, ensemble sweeps, trajectory cache.
``repro.inference``
    High-level ``calibrate()`` / forecasting API.
``repro.baselines``
    Single-shot IS, ABC rejection, pseudo-marginal MCMC, grid posterior.
``repro.viz``
    ASCII charts and CSV export of every figure's data.
"""

from .core import (SequentialCalibrator, SMCConfig, paper_first_window_prior,
                   paper_likelihood, paper_observation_model,
                   paper_window_jitter, paper_window_schedule)
from .inference import (CalibrationConfig, CalibrationResult, Forecast,
                        calibrate, forecast_from_posterior,
                        paper_calibration_config)
from .seir import (Checkpoint, DiseaseParameters, ParameterOverride,
                   StochasticSEIRModel, chicago_defaults)
from .sim import GroundTruth, make_fig2_ground_truth, make_ground_truth

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SequentialCalibrator", "SMCConfig",
    "paper_first_window_prior", "paper_window_jitter",
    "paper_observation_model", "paper_likelihood", "paper_window_schedule",
    "calibrate", "CalibrationConfig", "paper_calibration_config",
    "CalibrationResult", "Forecast", "forecast_from_posterior",
    "StochasticSEIRModel", "DiseaseParameters", "ParameterOverride",
    "Checkpoint", "chicago_defaults",
    "GroundTruth", "make_ground_truth", "make_fig2_ground_truth",
]
