"""Posterior predictive forecasting beyond the last calibrated window.

The paper motivates the framework as producing "plausible epidemic
trajectories/histories given the observed data" (section VI) for
forward-looking decision support.  Forecasting here is exactly the
checkpoint-restart machinery pointed at the future: every final-posterior
particle is restarted from its stored state with a fresh seed (parameters
held at their posterior values) and simulated ``horizon_days`` forward; the
ensemble of continuations is the posterior predictive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.particle import ParticleEnsemble
from ..core.posterior import TrajectoryRibbon, trajectory_ribbon
from ..core.smc import _run_continuation_task, _ContinuationTask
from ..data.sources import CASES
from ..hpc.executor import Executor, SerialExecutor
from ..seir.outputs import Trajectory
from ..seir.seeding import mix_seed

__all__ = ["Forecast", "forecast_from_posterior"]

_FORECAST_STREAM = 9100


@dataclass(frozen=True)
class Forecast:
    """Posterior predictive trajectory ensemble."""

    start_day: int
    horizon_days: int
    trajectories: tuple[Trajectory, ...]

    def ribbon(self, channel: str = CASES,
               quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
               ) -> TrajectoryRibbon:
        """Per-day forecast quantile bands."""
        return trajectory_ribbon(list(self.trajectories), channel, quantiles)

    def __len__(self) -> int:
        return len(self.trajectories)


def forecast_from_posterior(posterior: ParticleEnsemble, horizon_days: int,
                            executor: Executor | None = None,
                            base_seed: int = 0,
                            n_per_particle: int = 1) -> Forecast:
    """Simulate the posterior ensemble ``horizon_days`` past its checkpoints.

    Parameters
    ----------
    posterior:
        A (typically final-window) posterior ensemble whose particles carry
        checkpoints.
    horizon_days:
        Days to simulate beyond the checkpoint day.
    executor:
        Parallel backend (forecasting is embarrassingly parallel too).
    base_seed:
        Entropy for the fresh continuation seeds.
    n_per_particle:
        Stochastic continuations per particle (forecast spread includes
        simulator noise, not just parameter uncertainty).
    """
    if horizon_days < 1:
        raise ValueError("horizon_days must be >= 1")
    if n_per_particle < 1:
        raise ValueError("n_per_particle must be >= 1")
    executor = executor or SerialExecutor()

    first_cp = posterior[0].checkpoint
    if first_cp is None:
        raise ValueError("posterior particles carry no checkpoints")
    start_day = first_cp.day
    end_day = start_day + horizon_days

    tasks = []
    for rep in range(n_per_particle):
        for j, particle in enumerate(posterior):
            if particle.checkpoint is None:
                raise ValueError("posterior particles carry no checkpoints")
            seed = mix_seed(base_seed, _FORECAST_STREAM, rep, j, particle.seed)
            tasks.append(_ContinuationTask(
                checkpoint_payload=particle.checkpoint.to_dict(),
                override_payload={"seed": seed},
                end_day=end_day))
    outputs = executor.map(_run_continuation_task, tasks)
    return Forecast(start_day=start_day, horizon_days=horizon_days,
                    trajectories=tuple(traj for traj, _cp in outputs))
