"""Posterior predictive forecasting beyond the last calibrated window.

The paper motivates the framework as producing "plausible epidemic
trajectories/histories given the observed data" (section VI) for
forward-looking decision support.  Forecasting here is exactly the
checkpoint-restart machinery pointed at the future: every final-posterior
particle is restarted from its stored state with a fresh seed (parameters
held at their posterior values) and simulated ``horizon_days`` forward; the
ensemble of continuations is the posterior predictive.

By default the restart runs on the **sharded batched path**: the posterior's
checkpoints are stacked per structural group, split into contiguous shards,
and advanced by the
:class:`~repro.seir.batch_engine.BatchedBinomialLeapEngine` across the
executor's workers (:mod:`repro.hpc.sharding`) — one batched engine per
shard instead of one scalar task per particle.  Per-shard streams are keyed
by each shard's slice of the forecast seed vector, so a forecast is
bit-reproducible given ``(base_seed, shard layout)`` and identical across
executors for the same layout.  ``path="scalar"`` restores the per-particle
task fan-out (the oracle the batched forecast is parity-tested against);
``path="auto"`` falls back to it when checkpoints are not batchable
(non-leap engines or an active transmission schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.particle import Particle, ParticleEnsemble
from ..core.posterior import TrajectoryRibbon, trajectory_ribbon
from ..core.smc import _run_continuation_task, _ContinuationTask
from ..data.sources import CASES
from ..hpc.executor import Executor, SerialExecutor
from ..hpc.sharding import (build_group_specs, resolve_shard_layout,
                            simulate_groups, structural_groups)
from ..seir.outputs import Trajectory
from ..seir.seeding import mix_seed, register_stream_tag

__all__ = ["Forecast", "forecast_from_posterior", "forecast_scenarios"]

# Forecast continuation seeds occupy their own registered bank stream: the
# registry raises at import time if another consumer ever claims tag 9100,
# and the tag rides in ``mix_seed``'s reserved position right after the base
# seed so forecast seeds can never alias the calibrator's window streams.
_FORECAST_STREAM = register_stream_tag(
    "forecast", 9100, description="posterior-predictive continuation seeds")

#: Engine advancing stacked forecast shards (per-particle checkpoints are
#: stored in this engine family's scalar snapshot format).
_BATCH_FORECAST_ENGINE = "binomial_leap_batched"


@dataclass(frozen=True)
class Forecast:
    """Posterior predictive trajectory ensemble."""

    start_day: int
    horizon_days: int
    trajectories: tuple[Trajectory, ...]

    def ribbon(self, channel: str = CASES,
               quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
               ) -> TrajectoryRibbon:
        """Per-day forecast quantile bands."""
        return trajectory_ribbon(list(self.trajectories), channel, quantiles)

    def __len__(self) -> int:
        return len(self.trajectories)


def _forecast_entries(posterior: ParticleEnsemble, base_seed: int,
                      n_per_particle: int) -> tuple[list[Particle], list[int]]:
    """Replicate-major entry order shared by the scalar and batched paths."""
    entries: list[Particle] = []
    seeds: list[int] = []
    for rep in range(n_per_particle):
        for j, particle in enumerate(posterior):
            if particle.checkpoint is None:
                raise ValueError("posterior particles carry no checkpoints")
            entries.append(particle)
            seeds.append(mix_seed(base_seed, _FORECAST_STREAM, rep, j,
                                  particle.seed))
    return entries, seeds


def _batchable(posterior: ParticleEnsemble) -> bool:
    """True when every checkpoint can restart on the batched leap engine.

    Requires leap-format snapshots with no active transmission schedule,
    all sitting at one shared day and ``steps_per_day`` (a batch advances
    on a single clock); anything else forecasts on the scalar path.
    """
    cps = [p.checkpoint for p in posterior]
    if any(cp is None or cp.engine_name != "binomial_leap"
           or cp.theta_schedule is not None for cp in cps):
        return False
    first = cps[0].snapshot
    day = first.get("day")
    steps = first.get("steps_per_day")
    return all(cp.snapshot.get("day") == day
               and cp.snapshot.get("steps_per_day") == steps for cp in cps)


def _scalar_forecast(entries: list[Particle], seeds: list[int],
                     end_day: int, executor: Executor) -> list[Trajectory]:
    """Reference path: one checkpoint-restart task per forecast entry.

    Replicates (and resampled duplicates) share checkpoint objects, so
    each distinct checkpoint is serialised once, not once per entry.
    """
    payload_cache: dict[int, dict] = {}
    tasks = []
    for p, seed in zip(entries, seeds):
        payload = payload_cache.get(id(p.checkpoint))
        if payload is None:
            payload = p.checkpoint.to_dict()
            payload_cache[id(p.checkpoint)] = payload
        tasks.append(_ContinuationTask(checkpoint_payload=payload,
                                       override_payload={"seed": seed},
                                       end_day=end_day))
    outputs = executor.map(_run_continuation_task, tasks)
    return [traj for traj, _cp in outputs]


def _batched_forecast(entries: list[Particle], seeds: list[int],
                      end_day: int, executor: Executor,
                      layout: dict) -> list[Trajectory]:
    """Sharded batched path: stack checkpoints per group, shard, dispatch."""
    params_list = [p.checkpoint.params for p in entries]
    groups = structural_groups(params_list)
    specs = build_group_specs(
        groups, params_list, seeds,
        snapshots=[p.checkpoint.snapshot for p in entries])
    shards = simulate_groups(executor, specs, end_day=end_day,
                             engine=_BATCH_FORECAST_ENGINE,
                             return_state=False, **layout)
    trajectories: list[Trajectory | None] = [None] * len(entries)
    for indices, group in zip(groups, shards):
        for member, result, row in group.member_items():
            trajectories[indices[member]] = result.batch.trajectory(row)
    return trajectories  # type: ignore[return-value]


def forecast_from_posterior(posterior: ParticleEnsemble, horizon_days: int,
                            executor: Executor | None = None,
                            base_seed: int = 0,
                            n_per_particle: int = 1, *,
                            path: str = "auto",
                            shard_size: int | None = None,
                            n_shards: int | str = "auto") -> Forecast:
    """Simulate the posterior ensemble ``horizon_days`` past its checkpoints.

    Parameters
    ----------
    posterior:
        A (typically final-window) posterior ensemble whose particles carry
        checkpoints.
    horizon_days:
        Days to simulate beyond the checkpoint day.
    executor:
        Parallel backend (forecasting is embarrassingly parallel too); the
        batched path fans *shards* across it, the scalar path per-particle
        tasks.
    base_seed:
        Entropy for the fresh continuation seeds.
    n_per_particle:
        Stochastic continuations per particle (forecast spread includes
        simulator noise, not just parameter uncertainty).
    path:
        ``"batched"`` (sharded whole-cloud restart; raises if the
        checkpoints are not batchable), ``"scalar"`` (per-particle tasks,
        the parity oracle), or ``"auto"`` — batched whenever the
        checkpoints support it, scalar otherwise.
    shard_size / n_shards:
        Batched-path shard layout (see :class:`~repro.core.smc.SMCConfig`);
        ``"auto"`` targets one shard per executor worker.
    """
    if horizon_days < 1:
        raise ValueError("horizon_days must be >= 1")
    if n_per_particle < 1:
        raise ValueError("n_per_particle must be >= 1")
    if path not in ("auto", "batched", "scalar"):
        raise ValueError(f"path must be 'auto', 'batched' or 'scalar', "
                         f"got {path!r}")
    executor = executor or SerialExecutor()
    layout = resolve_shard_layout(executor, shard_size=shard_size,
                                  n_shards=n_shards)

    first_cp = posterior[0].checkpoint if len(posterior) else None
    if first_cp is None:
        raise ValueError("posterior particles carry no checkpoints")
    start_day = first_cp.day
    end_day = start_day + horizon_days

    entries, seeds = _forecast_entries(posterior, base_seed, n_per_particle)
    if path == "auto":
        path = "batched" if _batchable(posterior) else "scalar"
    elif path == "batched" and not _batchable(posterior):
        # Silently dropping a transmission schedule (or mis-restarting a
        # non-leap engine) would skew the forecast; refuse loudly instead.
        raise ValueError(
            "path='batched' requires binomial_leap checkpoints sharing one "
            "day and steps_per_day, with no active transmission schedule; "
            "use path='auto' or 'scalar'")
    if path == "batched":
        trajectories = _batched_forecast(entries, seeds, end_day, executor,
                                         layout)
    else:
        trajectories = _scalar_forecast(entries, seeds, end_day, executor)
    return Forecast(start_day=start_day, horizon_days=horizon_days,
                    trajectories=tuple(trajectories))


def forecast_scenarios(posteriors: "Mapping[str, ParticleEnsemble]",
                       horizon_days: int,
                       executor: Executor | None = None,
                       base_seed: int = 0,
                       n_per_particle: int = 1, *,
                       path: str = "auto",
                       shard_size: int | None = None,
                       n_shards: int | str = "auto") -> dict[str, Forecast]:
    """Fan :func:`forecast_from_posterior` out over per-scenario posteriors.

    ``posteriors`` maps scenario name to a checkpoint-carrying posterior
    ensemble — typically ``{r.scenario: r.final_posterior for r in
    sweep_result}`` from :func:`~repro.inference.api.calibrate_scenarios`.
    Every scenario forecasts under **common random numbers** (the same
    ``base_seed``, hence the same continuation seed vector for equal
    posterior seed lists), so cross-scenario forecast differences estimate
    scenario effects, not Monte Carlo noise; pass a distinct ``base_seed``
    per call for independent draws instead.  Scenarios are processed in
    sorted-name (canonical) order sharing one executor; the returned dict
    preserves that order.
    """
    executor = executor or SerialExecutor()
    return {name: forecast_from_posterior(
        posteriors[name], horizon_days, executor=executor,
        base_seed=base_seed, n_per_particle=n_per_particle, path=path,
        shard_size=shard_size, n_shards=n_shards)
        for name in sorted(posteriors)}
