"""High-level calibration configuration.

:class:`CalibrationConfig` gathers everything a run needs into one
JSON-serialisable object: ensemble sizes, window schedule, prior and jitter
hyper-parameters, likelihood noise, executor choice.  It builds the core
objects (:class:`~repro.core.smc.SMCConfig`, priors, jitters, observation
model) on demand, so scripts and benches configure runs declaratively.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..core.diagnostics import DEGENERACY_THRESHOLD
from ..core.observation import ObservationModel, paper_observation_model
from ..core.priors import Beta, IndependentProduct, Uniform
from ..core.proposals import JointJitter, paper_window_jitter
from ..core.smc import SMCConfig
from ..core.window import WindowSchedule
from ..hpc.checkpoint_io import CheckpointStore
from ..hpc.executor import Executor, make_executor
from ..hpc.faults import RetryPolicy
from ..seir.parameters import DiseaseParameters

__all__ = ["CalibrationConfig", "paper_calibration_config"]


@dataclass(frozen=True)
class CalibrationConfig:
    """Declarative configuration of one sequential calibration run.

    Attributes mirror section V of the paper; see
    :func:`paper_calibration_config` for the paper's exact settings at
    laptop scale.
    """

    window_breaks: tuple[int, ...] = (20, 34, 48, 62, 76)
    burn_in_start: int = 0

    n_parameter_draws: int = 500
    n_replicates: int = 5
    resample_size: int = 500
    n_continuations: int = 1

    theta_prior_low: float = 0.1
    theta_prior_high: float = 0.5
    rho_prior_a: float = 4.0
    rho_prior_b: float = 1.0

    theta_jitter_width: float = 0.05
    rho_jitter_width: float = 0.02
    rho_jitter_skew: float = 3.0

    sigma: float = 1.0
    bias_mode: str = "sample"
    resampler: str = "multinomial"
    #: "binomial_leap_batched" steps each window's whole ensemble as stacked
    #: state matrices, sharded across the executor; any scalar engine name
    #: restores the per-particle executor path.
    engine: str = "binomial_leap_batched"
    steps_per_day: int = 4
    #: Batched-path shard layout: members per shard, or an explicit shard
    #: count; the default "auto" policy cuts one shard per executor worker
    #: (see repro.hpc.sharding).
    shard_size: int | None = None
    n_shards: int | str = "auto"
    #: Adaptive ensemble-size controller: "fixed" (classic behaviour),
    #: "ess" (grow/shrink on the post-weighting ESS fraction), or "budget"
    #: (per-window particle-step cap); options are the policy's constructor
    #: keywords (see repro.core.ensemble_control).
    size_policy: str = "fixed"
    size_policy_options: dict = field(default_factory=dict)
    #: Posterior-size controller (same policy names/options as size_policy):
    #: decides per window how many particles the resampled posterior keeps;
    #: "fixed" keeps resample_size throughout.
    resample_size_policy: str = "fixed"
    resample_size_policy_options: dict = field(default_factory=dict)
    #: Tempered rescue of degenerate windows: when enabled, a window whose
    #: pre-resampling ESS fraction drops below temper_threshold is resampled
    #: through the staged tempered bridge (repro.core.adaptive) instead of a
    #: single pass; temper_ess_floor is the per-stage incremental ESS floor.
    temper_degenerate: bool = False
    temper_threshold: float = DEGENERACY_THRESHOLD
    temper_ess_floor: float = 0.5
    #: Resampler used inside the bridge ("systematic" by default — a
    #: low-variance scheme; a multinomial bridge compounds per-stage
    #: resampling noise).
    temper_resampler: str = "systematic"

    executor: str = "serial"
    max_workers: int | None = None

    base_seed: int = 20240215
    keep_weighted_ensemble: bool = False

    disease_overrides: dict = field(default_factory=dict)

    #: Fault-tolerant sharded dispatch (repro.hpc.faults): more than one
    #: attempt (or a per-shard timeout) builds a RetryPolicy — failed /
    #: timed-out / dropped shards are re-executed with deterministic
    #: backoff, serially in-process on the final attempt.  Results stay
    #: bit-identical (shard outputs are pure functions of their payload).
    retry_attempts: int = 1
    retry_timeout: float | None = None
    retry_backoff: float = 0.0
    #: Durable run state: persist each window's resampled posterior to this
    #: directory (CheckpointStore layout) and, with resume=True, restart
    #: from the last complete window instead of from scratch.
    checkpoint_dir: str | None = None
    resume: bool = False
    #: Retention GC: after a successful run, keep only the newest N sealed
    #: windows in the checkpoint store (CheckpointStore.prune; None keeps
    #: everything).  Pruning runs post-run because batch resume restores a
    #: gapless window prefix; the streaming service prunes continuously.
    checkpoint_keep_last: int | None = None

    # ------------------------------------------------------------------ #
    def schedule(self) -> WindowSchedule:
        return WindowSchedule.from_breaks(list(self.window_breaks),
                                          burn_in_start=self.burn_in_start)

    def prior(self) -> IndependentProduct:
        return IndependentProduct({
            "theta": Uniform(self.theta_prior_low, self.theta_prior_high),
            "rho": Beta(self.rho_prior_a, self.rho_prior_b),
        })

    def jitter(self) -> JointJitter:
        return paper_window_jitter(theta_width=self.theta_jitter_width,
                                   rho_width=self.rho_jitter_width,
                                   rho_skew=self.rho_jitter_skew)

    def observation_model(self) -> ObservationModel:
        return paper_observation_model(sigma=self.sigma,
                                       bias_mode=self.bias_mode)

    def smc_config(self) -> SMCConfig:
        return SMCConfig(
            n_parameter_draws=self.n_parameter_draws,
            n_replicates=self.n_replicates,
            resample_size=self.resample_size,
            n_continuations=self.n_continuations,
            resampler=self.resampler,
            engine=self.engine,
            engine_options=({"steps_per_day": self.steps_per_day}
                            if self.engine in ("binomial_leap",
                                               "binomial_leap_batched")
                            else {}),
            shard_size=self.shard_size,
            n_shards=self.n_shards,
            base_seed=self.base_seed,
            keep_weighted_ensemble=self.keep_weighted_ensemble,
            size_policy=self.size_policy,
            size_policy_options=dict(self.size_policy_options),
            resample_size_policy=self.resample_size_policy,
            resample_size_policy_options=dict(self.resample_size_policy_options),
            temper_degenerate=self.temper_degenerate,
            temper_threshold=self.temper_threshold,
            temper_ess_floor=self.temper_ess_floor,
            temper_resampler=self.temper_resampler,
            retry=self.retry_policy(),
        )

    def retry_policy(self) -> RetryPolicy | None:
        """The configured shard-retry policy (None = legacy fail-fast)."""
        if self.retry_attempts == 1 and self.retry_timeout is None:
            return None
        return RetryPolicy(max_attempts=self.retry_attempts,
                           timeout_seconds=self.retry_timeout,
                           backoff_seconds=self.retry_backoff)

    def checkpoint_store(self) -> CheckpointStore | None:
        """The configured durable window store (None = no persistence)."""
        if self.checkpoint_dir is None:
            return None
        return CheckpointStore(self.checkpoint_dir,
                               run_id=f"seed{self.base_seed}")

    def make_executor(self) -> Executor:
        return make_executor(self.executor, max_workers=self.max_workers)

    def disease_params(self, base: DiseaseParameters | None = None,
                       ) -> DiseaseParameters:
        params = base if base is not None else DiseaseParameters()
        if self.disease_overrides:
            params = params.with_updates(**self.disease_overrides)
        return params

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        d = asdict(self)
        d["window_breaks"] = list(self.window_breaks)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "CalibrationConfig":
        payload = dict(d)
        if "window_breaks" in payload:
            payload["window_breaks"] = tuple(payload["window_breaks"])
        return cls(**payload)

    def scaled(self, factor: float) -> "CalibrationConfig":
        """Scale the ensemble sizes (e.g. ``factor=50`` approaches paper scale)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return CalibrationConfig(**{
            **self.to_dict(),
            "n_parameter_draws": max(1, int(self.n_parameter_draws * factor)),
            "resample_size": max(1, int(self.resample_size * factor)),
        })


def paper_calibration_config(**overrides) -> CalibrationConfig:
    """The paper's experimental settings (section V) at laptop scale.

    Paper scale is ``n_parameter_draws=25_000, n_replicates=20,
    resample_size=10_000``; pass those explicitly (or use
    :meth:`CalibrationConfig.scaled`) on real hardware.
    """
    return CalibrationConfig(**overrides)
