"""High-level inference API: configure, calibrate, forecast."""

from .api import calibrate, calibrate_scenarios
from .config import CalibrationConfig, paper_calibration_config
from .forecast import Forecast, forecast_from_posterior, forecast_scenarios
from .results import CalibrationResult, ParameterTrack, ScenarioSweepResult

__all__ = [
    "calibrate", "calibrate_scenarios",
    "CalibrationConfig", "paper_calibration_config",
    "CalibrationResult", "ParameterTrack", "ScenarioSweepResult",
    "Forecast", "forecast_from_posterior", "forecast_scenarios",
]
