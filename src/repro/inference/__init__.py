"""High-level inference API: configure, calibrate, forecast."""

from .api import calibrate
from .config import CalibrationConfig, paper_calibration_config
from .forecast import Forecast, forecast_from_posterior
from .results import CalibrationResult, ParameterTrack

__all__ = [
    "calibrate",
    "CalibrationConfig", "paper_calibration_config",
    "CalibrationResult", "ParameterTrack",
    "Forecast", "forecast_from_posterior",
]
