"""Calibration results: per-window posteriors, ribbons, serialisable summary.

:class:`CalibrationResult` is what :func:`repro.inference.calibrate` returns:
the ordered window results plus the helpers that regenerate the paper's
figures — time-varying parameter estimates (Figs 4b/5b), posterior ribbons on
reported/true cases and deaths (Figs 4a/5a), and an overall JSON summary for
EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.posterior import TrajectoryRibbon, trajectory_ribbon
from ..core.smc import WindowResult
from ..core.window import WindowSchedule
from ..data.sources import CASES
from ..seir.outputs import Trajectory

__all__ = ["CalibrationResult", "ParameterTrack", "ScenarioSweepResult"]


@dataclass(frozen=True)
class ParameterTrack:
    """Posterior summary of one parameter across windows (a Fig 4b row)."""

    name: str
    window_labels: tuple[str, ...]
    means: np.ndarray
    medians: np.ndarray
    ci50: np.ndarray  # shape (n_windows, 2)
    ci90: np.ndarray  # shape (n_windows, 2)

    def covers(self, window_index: int, truth: float, level: str = "ci90") -> bool:
        """Did the chosen interval of this window contain the truth?"""
        band = getattr(self, level)
        lo, hi = band[window_index]
        return bool(lo <= truth <= hi)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "window_labels": list(self.window_labels),
            "means": self.means.tolist(),
            "medians": self.medians.tolist(),
            "ci50": self.ci50.tolist(),
            "ci90": self.ci90.tolist(),
        }


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a full sequential calibration run."""

    schedule: WindowSchedule
    windows: tuple[WindowResult, ...]
    config_payload: dict
    wall_time_seconds: float = float("nan")
    #: Index of the last window restored from a checkpoint store, or None
    #: when the run computed every window from scratch.
    resumed_from: int | None = None
    #: Name of the scenario this run calibrated under.  Defaults to
    #: "baseline" so pre-scenario callers (and stored summaries, which
    #: simply lacked the key) keep their meaning unchanged.
    scenario: str = "baseline"

    def __post_init__(self) -> None:
        if len(self.windows) != len(self.schedule):
            raise ValueError("one WindowResult per schedule window required")
        object.__setattr__(self, "windows", tuple(self.windows))

    # ------------------------------------------------------------------ #
    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def final_posterior(self):
        return self.windows[-1].posterior

    def window(self, index: int) -> WindowResult:
        return self.windows[index]

    # ------------------------------------------------------------------ #
    def parameter_track(self, name: str) -> ParameterTrack:
        """Per-window posterior summaries of one parameter."""
        labels, means, medians, ci50, ci90 = [], [], [], [], []
        for wr in self.windows:
            post = wr.posterior
            labels.append(wr.window.label())
            means.append(post.weighted_mean(name))
            medians.append(float(post.weighted_quantile(name, 0.5)))
            ci50.append(post.credible_interval(name, 0.5))
            ci90.append(post.credible_interval(name, 0.9))
        return ParameterTrack(name=name, window_labels=tuple(labels),
                              means=np.array(means), medians=np.array(medians),
                              ci50=np.array(ci50), ci90=np.array(ci90))

    def posterior_ribbon(self, channel: str = CASES,
                         quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
                         ) -> TrajectoryRibbon:
        """Credible ribbon over the final posterior's full trajectory history.

        This is the grey-trajectories + shaded-ribbons panel of Figs 4a/5a:
        every surviving particle carries its complete history from simulation
        start, so the ribbon spans burn-in through the last window.
        """
        return trajectory_ribbon(self.final_posterior.trajectories("history"),
                                 channel, quantiles)

    def window_ribbon(self, index: int, channel: str = CASES,
                      quantiles: Sequence[float] = (0.05, 0.25, 0.5, 0.75, 0.95),
                      ) -> TrajectoryRibbon:
        """Ribbon over one window's posterior segment trajectories."""
        return trajectory_ribbon(self.windows[index].posterior.trajectories("segment"),
                                 channel, quantiles)

    def final_histories(self) -> list[Trajectory]:
        return self.final_posterior.trajectories("history")

    # ------------------------------------------------------------------ #
    def ess_fractions(self) -> np.ndarray:
        return np.array([wr.diagnostics.ess_fraction for wr in self.windows])

    def ensemble_sizes(self) -> np.ndarray:
        """Per-window weighted-cloud sizes — the size-policy trajectory.

        Under the fixed policy this is ``[draws * replicates,
        resample_size * n_continuations, ...]``; under an adaptive policy
        it records every grow/shrink decision the run actually took.
        """
        return np.array([wr.diagnostics.n_particles for wr in self.windows],
                        dtype=np.int64)

    def resample_sizes(self) -> np.ndarray:
        """Per-window resampled-posterior sizes.

        Fixed at ``resample_size`` under the default policy; under an
        adaptive ``resample_size_policy`` it records every posterior-size
        decision the run actually took.
        """
        return np.array([len(wr.posterior) for wr in self.windows],
                        dtype=np.int64)

    def tempered_windows(self) -> list[int]:
        """Indices of windows rescued through a multi-stage tempered bridge.

        A window appears here when its resampling ran through
        :func:`repro.core.adaptive.temper_and_resample` *and* the adaptive
        schedule needed more than one stage — the signature of a window
        degenerate enough to require actual bridging.  A single-stage
        bridge applied the full likelihood in one pass (like the plain
        path, though drawn with ``temper_resampler``'s scheme); those
        windows are visible via each diagnostics' ``tempered`` flag, and
        the realised schedules live in ``temper_schedule``.
        """
        return [wr.index for wr in self.windows
                if wr.diagnostics.temper_stages > 1]

    def total_particle_steps(self) -> int:
        """Total simulation cost of the run in particle-days.

        The budget the adaptive ensemble-size policies trade against
        posterior quality; 0 when produced from diagnostics that predate
        the accounting.
        """
        return int(sum(wr.diagnostics.particle_steps for wr in self.windows))

    def log_evidence(self) -> float:
        """Sum of per-window incremental log-evidence estimates."""
        return float(sum(wr.diagnostics.log_evidence for wr in self.windows))

    def summary(self) -> dict:
        """JSON-safe run summary (parameters, diagnostics, timings)."""
        params = self.windows[0].posterior.param_names
        return {
            "n_windows": self.n_windows,
            "windows": [wr.window.label() for wr in self.windows],
            "wall_time_seconds": self.wall_time_seconds,
            "resumed_from": self.resumed_from,
            "scenario": self.scenario,
            "log_evidence": self.log_evidence(),
            "ensemble_sizes": self.ensemble_sizes().tolist(),
            "resample_sizes": self.resample_sizes().tolist(),
            "tempered_windows": self.tempered_windows(),
            "total_particle_steps": self.total_particle_steps(),
            "diagnostics": [wr.diagnostics.to_dict() for wr in self.windows],
            "parameters": {name: self.parameter_track(name).to_dict()
                           for name in params},
            "config": dict(self.config_payload),
        }

    def save_summary(self, path: str | os.PathLike) -> None:
        with open(os.fspath(path), "w") as fh:
            json.dump(self.summary(), fh, indent=2)

    def describe(self) -> str:
        """Multi-line human-readable report (used by examples)."""
        lines = [f"Sequential calibration over {self.n_windows} windows"]
        for wr in self.windows:
            s = wr.summary()
            parts = [f"  {s['window']}:"]
            for name in wr.posterior.param_names:
                p = s[name]
                parts.append(f"{name}={p['mean']:.3f} "
                             f"[{p['ci90'][0]:.3f}, {p['ci90'][1]:.3f}]")
            parts.append(f"ESS%={100 * s['ess_fraction']:.1f}")
            lines.append(" ".join(parts))
        lines.append(f"  total log-evidence: {self.log_evidence():.1f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ScenarioSweepResult:
    """Per-scenario :class:`CalibrationResult`\\ s from one vectorized sweep.

    ``results`` is in the sweep's canonical (name-sorted) execution order;
    index by scenario name or position.  ``computed_windows`` /
    ``reused_windows`` record the world-line deduplication: windows
    provably bit-identical across scenarios (common random numbers, equal
    effective parameters so far) were simulated once and shared.
    """

    results: tuple[CalibrationResult, ...]
    wall_time_seconds: float = float("nan")
    #: Windows actually simulated vs served from another scenario's
    #: identical world-line.
    computed_windows: int = 0
    reused_windows: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))
        if not self.results:
            raise ValueError("a sweep result needs at least one scenario")
        names = [r.scenario for r in self.results]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names in sweep: {names}")

    @property
    def names(self) -> list[str]:
        return [r.scenario for r in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, key: int | str) -> CalibrationResult:
        if isinstance(key, str):
            for result in self.results:
                if result.scenario == key:
                    return result
            raise KeyError(f"no scenario {key!r} in sweep; have {self.names}")
        return self.results[key]

    def summary(self) -> dict:
        return {
            "scenarios": self.names,
            "wall_time_seconds": self.wall_time_seconds,
            "computed_windows": self.computed_windows,
            "reused_windows": self.reused_windows,
            "results": {r.scenario: r.summary() for r in self.results},
        }

    def save_summary(self, path: str | os.PathLike) -> None:
        with open(os.fspath(path), "w") as fh:
            json.dump(self.summary(), fh, indent=2)
