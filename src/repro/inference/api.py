"""Top-level convenience API: ``calibrate()`` in one call.

Wires a :class:`~repro.inference.config.CalibrationConfig` into the core
:class:`~repro.core.smc.SequentialCalibrator` and wraps the outcome in a
:class:`~repro.inference.results.CalibrationResult`.  This is the function
the examples and benches use; power users can assemble the core objects
directly for full control.
"""

from __future__ import annotations

import time

from ..core.smc import SequentialCalibrator
from ..data.sources import ObservationSet
from ..data.validation import validate_observations
from ..hpc.checkpoint_io import CheckpointStore
from ..hpc.executor import Executor
from ..seir.parameters import DiseaseParameters
from .config import CalibrationConfig
from .results import CalibrationResult

__all__ = ["calibrate"]


def calibrate(observations: ObservationSet,
              config: CalibrationConfig | None = None,
              base_params: DiseaseParameters | None = None,
              executor: Executor | None = None,
              verbose: bool = False,
              store: CheckpointStore | None = None) -> CalibrationResult:
    """Run the paper's sequential calibration against observed data streams.

    Parameters
    ----------
    observations:
        The observed streams (cases, optionally deaths) covering every
        calibration window of the config's schedule.
    config:
        Run configuration; defaults to the paper's settings at laptop scale.
    base_params:
        Disease parameterisation; config ``disease_overrides`` are applied
        on top.
    executor:
        Overrides the executor named in the config (useful for injecting a
        shared pool across several runs).
    verbose:
        Print per-window progress lines.
    store:
        Overrides the checkpoint store built from ``config.checkpoint_dir``
        (useful for injecting a store with a custom run id).  When either
        is set, every completed window is durably persisted, and
        ``config.resume`` restarts from the last complete stored window —
        bit-identical to an uninterrupted run (see
        ``docs/fault_tolerance.md``).

    Returns
    -------
    CalibrationResult
        Per-window posteriors, diagnostics, and figure-regeneration helpers.
    """
    validate_observations(observations)
    config = config or CalibrationConfig()
    params = config.disease_params(base_params)
    own_executor = executor is None
    exec_backend = executor if executor is not None else config.make_executor()
    progress = print if verbose else None
    if store is None:
        store = config.checkpoint_store()

    calibrator = SequentialCalibrator(
        base_params=params,
        prior=config.prior(),
        jitter=config.jitter(),
        observation_model=config.observation_model(),
        schedule=config.schedule(),
        config=config.smc_config(),
        executor=exec_backend,
        progress=progress,
    )
    started = time.perf_counter()
    try:
        window_results = calibrator.run(observations, store=store,
                                        resume=config.resume)
    finally:
        if own_executor:
            exec_backend.close()
    elapsed = time.perf_counter() - started
    if store is not None and config.checkpoint_keep_last is not None:
        # Post-run retention GC only: pruning mid-run would break the
        # gapless-prefix restore that batch resume performs.
        pruned = store.prune(config.checkpoint_keep_last)
        if pruned and verbose:
            print(f"pruned {len(pruned)} old checkpoint window(s), "
                  f"kept the newest {config.checkpoint_keep_last}")
    return CalibrationResult(schedule=config.schedule(),
                             windows=tuple(window_results),
                             config_payload=config.to_dict(),
                             wall_time_seconds=elapsed,
                             resumed_from=calibrator.resumed_from)
