"""Top-level convenience API: ``calibrate()`` in one call.

Wires a :class:`~repro.inference.config.CalibrationConfig` into the core
:class:`~repro.core.smc.SequentialCalibrator` and wraps the outcome in a
:class:`~repro.inference.results.CalibrationResult`.  This is the function
the examples and benches use; power users can assemble the core objects
directly for full control.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Sequence

from ..core.scenarios import ScenarioSpec, ScenarioSweep, get_scenario
from ..core.smc import SequentialCalibrator
from ..data.sources import ObservationSet
from ..data.validation import validate_observations
from ..hpc.checkpoint_io import CheckpointStore
from ..hpc.executor import Executor
from ..seir.parameters import DiseaseParameters
from .config import CalibrationConfig
from .results import CalibrationResult, ScenarioSweepResult

__all__ = ["calibrate", "calibrate_scenarios"]


def calibrate(observations: ObservationSet,
              config: CalibrationConfig | None = None,
              base_params: DiseaseParameters | None = None,
              executor: Executor | None = None,
              verbose: bool = False,
              store: CheckpointStore | None = None,
              scenario: ScenarioSpec | str | None = None) -> CalibrationResult:
    """Run the paper's sequential calibration against observed data streams.

    Parameters
    ----------
    observations:
        The observed streams (cases, optionally deaths) covering every
        calibration window of the config's schedule.
    config:
        Run configuration; defaults to the paper's settings at laptop scale.
    base_params:
        Disease parameterisation; config ``disease_overrides`` are applied
        on top.
    executor:
        Overrides the executor named in the config (useful for injecting a
        shared pool across several runs).
    verbose:
        Print per-window progress lines.
    store:
        Overrides the checkpoint store built from ``config.checkpoint_dir``
        (useful for injecting a store with a custom run id).  When either
        is set, every completed window is durably persisted, and
        ``config.resume`` restarts from the last complete stored window —
        bit-identical to an uninterrupted run (see
        ``docs/fault_tolerance.md``).
    scenario:
        Optional :class:`~repro.core.scenarios.ScenarioSpec` (or registered
        name) to calibrate under — declarative parameter overrides on top
        of ``base_params`` (see ``docs/scenarios.md``).  None and the
        registered ``"baseline"`` are bit-identical to a scenario-less run.

    Returns
    -------
    CalibrationResult
        Per-window posteriors, diagnostics, and figure-regeneration helpers.
    """
    validate_observations(observations)
    config = config or CalibrationConfig()
    params = config.disease_params(base_params)
    own_executor = executor is None
    exec_backend = executor if executor is not None else config.make_executor()
    progress = print if verbose else None
    if store is None:
        store = config.checkpoint_store()
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario

    calibrator = SequentialCalibrator(
        base_params=params,
        prior=config.prior(),
        jitter=config.jitter(),
        observation_model=config.observation_model(),
        schedule=config.schedule(),
        config=config.smc_config(),
        executor=exec_backend,
        progress=progress,
        scenario=spec,
    )
    # repro-allow: REPRO201 wall_time_seconds is reporting metadata, never an input to any draw
    started = time.perf_counter()
    try:
        window_results = calibrator.run(observations, store=store,
                                        resume=config.resume)
    finally:
        if own_executor:
            exec_backend.close()
    # repro-allow: REPRO201 wall_time_seconds is reporting metadata, never an input to any draw
    elapsed = time.perf_counter() - started
    if store is not None and config.checkpoint_keep_last is not None:
        # Post-run retention GC only: pruning mid-run would break the
        # gapless-prefix restore that batch resume performs.
        pruned = store.prune(config.checkpoint_keep_last)
        if pruned and verbose:
            print(f"pruned {len(pruned)} old checkpoint window(s), "
                  f"kept the newest {config.checkpoint_keep_last}")
    return CalibrationResult(schedule=config.schedule(),
                             windows=tuple(window_results),
                             config_payload=config.to_dict(),
                             wall_time_seconds=elapsed,
                             resumed_from=calibrator.resumed_from,
                             scenario=spec.name if spec is not None
                             else "baseline")


def calibrate_scenarios(observations: ObservationSet,
                        scenarios: Sequence[ScenarioSpec | str] = ("baseline",),
                        config: CalibrationConfig | None = None,
                        base_params: DiseaseParameters | None = None,
                        executor: Executor | None = None,
                        verbose: bool = False) -> ScenarioSweepResult:
    """Calibrate several scenarios as one vectorized, deduplicated sweep.

    The multi-world form of :func:`calibrate`: every scenario shares the
    config, executor, and (by default) random-number streams, all
    scenarios' shards are flattened into each window's executor dispatch,
    and windows provably identical across scenarios are computed once
    (see :class:`~repro.core.scenarios.ScenarioSweep`).  Per-scenario
    results are **bit-identical** to calling :func:`calibrate` once per
    scenario with this config.

    With ``config.checkpoint_dir`` set, each scenario persists/resumes
    against its own sub-store (``<checkpoint_dir>/<scenario>``), honouring
    ``config.resume`` exactly like single-scenario runs.
    """
    validate_observations(observations)
    config = config or CalibrationConfig()
    params = config.disease_params(base_params)
    own_executor = executor is None
    exec_backend = executor if executor is not None else config.make_executor()
    progress = print if verbose else None

    sweep = ScenarioSweep(
        base_params=params,
        prior=config.prior(),
        jitter=config.jitter(),
        observation_model=config.observation_model(),
        schedule=config.schedule(),
        scenarios=scenarios,
        config=config.smc_config(),
        executor=exec_backend,
        progress=progress,
    )
    stores = None
    if config.checkpoint_dir is not None:
        root = Path(config.checkpoint_dir)
        stores = {name: CheckpointStore(root / name,
                                        run_id=f"seed{config.base_seed}")
                  for name in sweep.names}
    # repro-allow: REPRO201 sweep wall time is reporting metadata, never an input to any draw
    started = time.perf_counter()
    try:
        window_results = sweep.run(observations, stores=stores,
                                   resume=config.resume)
    finally:
        if own_executor:
            exec_backend.close()
    # repro-allow: REPRO201 sweep wall time is reporting metadata, never an input to any draw
    elapsed = time.perf_counter() - started
    if stores is not None and config.checkpoint_keep_last is not None:
        for name_store in stores.values():
            name_store.prune(config.checkpoint_keep_last)
    results = tuple(
        CalibrationResult(schedule=config.schedule(),
                          windows=tuple(window_results[name]),
                          config_payload=config.to_dict(),
                          wall_time_seconds=float("nan"),
                          resumed_from=sweep.resumed_from.get(name),
                          scenario=name)
        for name in sweep.names)
    return ScenarioSweepResult(results=results,
                               wall_time_seconds=elapsed,
                               computed_windows=sweep.computed_windows,
                               reused_windows=sweep.reused_windows)
