"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper experiments at a chosen scale and write their
data products to an output directory:

* ``fig2`` — simulated ground truth series;
* ``fig3`` — single-window importance sampling summary;
* ``fig4`` — sequential calibration (cases only);
* ``fig5`` — sequential calibration (cases + deaths);
* ``forecast`` — calibrate then forecast beyond the data.

Example::

    python -m repro fig4 --draws 500 --replicates 5 --out results/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from .baselines import single_shot_importance_sampling
from .core import paper_first_window_prior, paper_observation_model
from .core.diagnostics import DEGENERACY_THRESHOLD
from .hpc import make_executor
from .inference import CalibrationConfig, calibrate, forecast_from_posterior
from .seir import chicago_defaults
from .sim import make_fig2_ground_truth
from .viz import write_json, write_series_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequential Monte Carlo calibration of stochastic "
                    "epidemic models (Fadikar et al. 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--out", type=Path, default=Path("repro-output"),
                       help="output directory (default: ./repro-output)")
        p.add_argument("--seed", type=int, default=20240215,
                       help="base seed for the whole run")
        p.add_argument("--executor", choices=("serial", "process", "thread"),
                       default="process", help="parallel backend")
        p.add_argument("--workers", type=int, default=None,
                       help="worker count for pooled executors")

    p2 = sub.add_parser("fig2", help="simulate the ground truth (Figure 2)")
    common(p2)
    p2.add_argument("--horizon", type=int, default=100)

    for name, text in (("fig3", "single-window IS calibration (Figure 3)"),
                       ("fig4", "sequential calibration, cases (Figure 4)"),
                       ("fig5", "sequential calibration, cases+deaths (Figure 5)"),
                       ("forecast", "calibrate then forecast ahead")):
        p = sub.add_parser(name, help=text)
        common(p)
        p.add_argument("--draws", type=int, default=300,
                       help="prior parameter draws (paper: 25000)")
        p.add_argument("--replicates", type=int, default=5,
                       help="common-seed replicates per draw (paper: 20)")
        p.add_argument("--resample", type=int, default=1000,
                       help="posterior sample size (paper: 10000)")
        if name != "fig3":  # sequential commands can adapt the cloud size
            p.add_argument("--size-policy", choices=("fixed", "ess", "budget"),
                           default="fixed",
                           help="adaptive ensemble-size policy between "
                                "windows (default: fixed size)")
            p.add_argument("--ess-low", type=float, default=0.1,
                           help="ess policy: grow the cloud below this ESS "
                                "fraction")
            p.add_argument("--ess-high", type=float, default=0.5,
                           help="ess policy: shrink the cloud above this "
                                "ESS fraction")
            p.add_argument("--size-min", type=int, default=50,
                           help="smallest cloud a policy may propose")
            p.add_argument("--size-max", type=int, default=100_000,
                           help="largest cloud a policy may propose")
            p.add_argument("--step-budget", type=int, default=None,
                           help="budget policy: particle-steps "
                                "(particle-days) allowed per window")
            p.add_argument("--resample-policy",
                           choices=("fixed", "ess"),
                           default="fixed",
                           help="policy driving the resampled posterior "
                                "size per window (shares the --ess-*/"
                                "--size-* knobs; no budget choice — the "
                                "posterior is never re-simulated, so a "
                                "particle-step budget cannot bind it; "
                                "default: fixed resample size)")
            p.add_argument("--temper", action="store_true",
                           help="route degenerate windows through the "
                                "tempered resampling bridge instead of a "
                                "single pass")
            p.add_argument("--temper-threshold", type=float,
                           default=DEGENERACY_THRESHOLD,
                           help="ESS fraction below which a window is "
                                "tempered (with --temper)")
            p.add_argument("--temper-floor", type=float, default=0.5,
                           help="per-stage incremental ESS floor of the "
                                "tempered bridge (with --temper)")
            p.add_argument("--checkpoint-dir", type=Path, default=None,
                           help="durably persist each completed window's "
                                "posterior to this directory (enables "
                                "--resume after an interruption)")
            p.add_argument("--resume", action="store_true",
                           help="restart from the last complete window in "
                                "--checkpoint-dir instead of from scratch "
                                "(bit-identical to an uninterrupted run)")
            p.add_argument("--retry-attempts", type=int, default=1,
                           help="attempts per simulation shard before the "
                                "run fails; >1 enables fault-tolerant "
                                "dispatch with a final in-process fallback")
            p.add_argument("--retry-timeout", type=float, default=None,
                           help="per-shard timeout in seconds (pooled "
                                "executors); timed-out shards are retried")
            p.add_argument("--retry-backoff", type=float, default=0.0,
                           help="seconds of linear backoff between shard "
                                "retry attempts")
        if name == "forecast":
            p.add_argument("--horizon-days", type=int, default=14)
    return parser


def _policy_options(name: str, args, flag: str) -> dict:
    """Translate the shared CLI knobs into a named policy's options."""
    if name == "ess":
        return {"target_low": args.ess_low, "target_high": args.ess_high,
                "n_min": args.size_min, "n_max": args.size_max}
    if name == "budget":
        if args.step_budget is None:
            raise SystemExit(f"{flag} budget requires --step-budget")
        return {"step_budget": args.step_budget, "n_min": args.size_min,
                "n_max": args.size_max}
    return {}


def _size_policy_options(args) -> dict:
    return _policy_options(args.size_policy, args, "--size-policy")


def _resample_policy_options(args) -> dict:
    return _policy_options(args.resample_policy, args, "--resample-policy")


def _adaptive_config_kwargs(args) -> dict:
    """The adaptive-resampling knobs shared by the sequential commands."""
    return dict(size_policy=args.size_policy,
                size_policy_options=_size_policy_options(args),
                resample_size_policy=args.resample_policy,
                resample_size_policy_options=_resample_policy_options(args),
                temper_degenerate=args.temper,
                temper_threshold=args.temper_threshold,
                temper_ess_floor=args.temper_floor)


def _fault_config_kwargs(args) -> dict:
    """The fault-tolerance knobs shared by the sequential commands."""
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    return dict(retry_attempts=args.retry_attempts,
                retry_timeout=args.retry_timeout,
                retry_backoff=args.retry_backoff,
                checkpoint_dir=(str(args.checkpoint_dir)
                                if args.checkpoint_dir is not None else None),
                resume=args.resume)


def _cmd_fig2(args) -> int:
    truth = make_fig2_ground_truth(seed=args.seed, horizon=args.horizon)
    args.out.mkdir(parents=True, exist_ok=True)
    write_series_csv(args.out / "fig2_series.csv", {
        "true_cases": truth.true_cases,
        "observed_cases": truth.observed_cases,
        "deaths": truth.deaths})
    print(f"wrote {args.out / 'fig2_series.csv'}")
    last = truth.true_cases.end_day - 1
    print(f"day {last}: true {truth.true_cases.value_on(last):.0f}, "
          f"observed {truth.observed_cases.value_on(last):.0f}, "
          f"deaths {truth.deaths.value_on(last):.0f}")
    return 0


def _cmd_fig3(args) -> int:
    truth = make_fig2_ground_truth(seed=777, horizon=40)
    executor = make_executor(args.executor, max_workers=args.workers)
    try:
        result = single_shot_importance_sampling(
            truth.observations(), chicago_defaults(),
            paper_first_window_prior(), paper_observation_model(),
            start_day=20, end_day=34, n_parameter_draws=args.draws,
            n_replicates=args.replicates, resample_size=args.resample,
            base_seed=args.seed, executor=executor)
    finally:
        executor.close()
    args.out.mkdir(parents=True, exist_ok=True)
    summary = result.summary()
    write_json(args.out / "fig3_summary.json", summary)
    print(json.dumps(summary, indent=2, default=float))
    return 0


def _sequential(args, include_deaths: bool, label: str) -> int:
    truth = make_fig2_ground_truth(seed=777, horizon=76)
    cfg = CalibrationConfig(
        window_breaks=(20, 34, 48, 62, 76),
        n_parameter_draws=args.draws, n_replicates=args.replicates,
        resample_size=args.resample, theta_jitter_width=0.16,
        rho_jitter_width=0.04, n_continuations=2, base_seed=args.seed,
        executor=args.executor, max_workers=args.workers,
        **_adaptive_config_kwargs(args), **_fault_config_kwargs(args))
    result = calibrate(truth.observations(include_deaths=include_deaths),
                       cfg, verbose=True)
    args.out.mkdir(parents=True, exist_ok=True)
    result.save_summary(args.out / f"{label}_summary.json")
    print()
    if result.resumed_from is not None:
        print(f"  resumed from window {result.resumed_from} "
              f"(windows 0..{result.resumed_from} restored from "
              f"{args.checkpoint_dir})")
    print(result.describe())
    sizes = ", ".join(str(int(n)) for n in result.ensemble_sizes())
    print(f"  per-window cloud sizes: {sizes} "
          f"({result.total_particle_steps()} particle-steps)")
    posts = ", ".join(str(int(n)) for n in result.resample_sizes())
    print(f"  per-window posterior sizes: {posts}")
    tempered = result.tempered_windows()
    if tempered:
        print(f"  tempered rescue bridged windows: "
              f"{', '.join(str(w) for w in tempered)}")
    print(f"\nwrote {args.out / (label + '_summary.json')}")
    return 0


def _cmd_forecast(args) -> int:
    truth = make_fig2_ground_truth(seed=777, horizon=48)
    cfg = CalibrationConfig(
        window_breaks=(20, 34, 48), n_parameter_draws=args.draws,
        n_replicates=args.replicates, resample_size=args.resample,
        base_seed=args.seed, executor=args.executor,
        max_workers=args.workers, **_adaptive_config_kwargs(args),
        **_fault_config_kwargs(args))
    result = calibrate(truth.observations(include_deaths=True), cfg,
                       verbose=True)
    if result.resumed_from is not None:
        print(f"resumed from window {result.resumed_from}")
    forecast = forecast_from_posterior(result.final_posterior,
                                       horizon_days=args.horizon_days,
                                       base_seed=args.seed)
    ribbon = forecast.ribbon("cases")
    args.out.mkdir(parents=True, exist_ok=True)
    payload = {
        "start_day": forecast.start_day,
        "horizon_days": forecast.horizon_days,
        "days": ribbon.days.tolist(),
        "q05": ribbon.band(0.05).tolist(),
        "q50": ribbon.median().tolist(),
        "q95": ribbon.band(0.95).tolist(),
    }
    write_json(args.out / "forecast.json", payload)
    print(f"\nforecast written to {args.out / 'forecast.json'}; "
          f"median day-{forecast.start_day + args.horizon_days - 1} cases: "
          f"{float(np.asarray(payload['q50'])[-1]):.0f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig2":
        return _cmd_fig2(args)
    if args.command == "fig3":
        return _cmd_fig3(args)
    if args.command == "fig4":
        return _sequential(args, include_deaths=False, label="fig4")
    if args.command == "fig5":
        return _sequential(args, include_deaths=True, label="fig5")
    if args.command == "forecast":
        return _cmd_forecast(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
