"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper experiments at a chosen scale and write their
data products to an output directory:

* ``fig2`` — simulated ground truth series;
* ``fig3`` — single-window importance sampling summary;
* ``fig4`` — sequential calibration (cases only);
* ``fig5`` — sequential calibration (cases + deaths);
* ``forecast`` — calibrate then forecast beyond the data.
* ``scenarios`` — list the registered what-if scenarios and sets.
* ``serve`` — run the always-on calibration service against a spool
  directory, publishing crash-safe forecast artifacts per window.

The sequential commands (``fig4``/``fig5``/``forecast``) accept
``--scenario NAME`` (repeatable) or ``--scenario-set SET`` to calibrate
several what-if worlds as one vectorized sweep (see ``docs/scenarios.md``).

Example::

    python -m repro fig4 --draws 500 --replicates 5 --out results/
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import time
from pathlib import Path

import numpy as np

from .baselines import single_shot_importance_sampling
from .core import paper_first_window_prior, paper_observation_model
from .core.diagnostics import DEGENERACY_THRESHOLD
from .core.scenarios import SCENARIO_SETS, SCENARIOS, scenario_set
from .hpc import make_executor
from .inference import (CalibrationConfig, calibrate, calibrate_scenarios,
                        forecast_from_posterior, forecast_scenarios)
from .seir import chicago_defaults
from .sim import make_fig2_ground_truth
from .viz import write_json, write_series_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sequential Monte Carlo calibration of stochastic "
                    "epidemic models (Fadikar et al. 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--out", type=Path, default=Path("repro-output"),
                       help="output directory (default: ./repro-output)")
        p.add_argument("--seed", type=int, default=20240215,
                       help="base seed for the whole run")
        p.add_argument("--executor", choices=("serial", "process", "thread"),
                       default="process", help="parallel backend")
        p.add_argument("--workers", type=int, default=None,
                       help="worker count for pooled executors")

    p2 = sub.add_parser("fig2", help="simulate the ground truth (Figure 2)")
    common(p2)
    p2.add_argument("--horizon", type=int, default=100)

    for name, text in (("fig3", "single-window IS calibration (Figure 3)"),
                       ("fig4", "sequential calibration, cases (Figure 4)"),
                       ("fig5", "sequential calibration, cases+deaths (Figure 5)"),
                       ("forecast", "calibrate then forecast ahead")):
        p = sub.add_parser(name, help=text)
        common(p)
        p.add_argument("--draws", type=int, default=300,
                       help="prior parameter draws (paper: 25000)")
        p.add_argument("--replicates", type=int, default=5,
                       help="common-seed replicates per draw (paper: 20)")
        p.add_argument("--resample", type=int, default=1000,
                       help="posterior sample size (paper: 10000)")
        if name != "fig3":  # sequential commands can adapt the cloud size
            p.add_argument("--size-policy", choices=("fixed", "ess", "budget"),
                           default="fixed",
                           help="adaptive ensemble-size policy between "
                                "windows (default: fixed size)")
            p.add_argument("--ess-low", type=float, default=0.1,
                           help="ess policy: grow the cloud below this ESS "
                                "fraction")
            p.add_argument("--ess-high", type=float, default=0.5,
                           help="ess policy: shrink the cloud above this "
                                "ESS fraction")
            p.add_argument("--size-min", type=int, default=50,
                           help="smallest cloud a policy may propose")
            p.add_argument("--size-max", type=int, default=100_000,
                           help="largest cloud a policy may propose")
            p.add_argument("--step-budget", type=int, default=None,
                           help="budget policy: particle-steps "
                                "(particle-days) allowed per window")
            p.add_argument("--resample-policy",
                           choices=("fixed", "ess"),
                           default="fixed",
                           help="policy driving the resampled posterior "
                                "size per window (shares the --ess-*/"
                                "--size-* knobs; no budget choice — the "
                                "posterior is never re-simulated, so a "
                                "particle-step budget cannot bind it; "
                                "default: fixed resample size)")
            p.add_argument("--temper", action="store_true",
                           help="route degenerate windows through the "
                                "tempered resampling bridge instead of a "
                                "single pass")
            p.add_argument("--temper-threshold", type=float,
                           default=DEGENERACY_THRESHOLD,
                           help="ESS fraction below which a window is "
                                "tempered (with --temper)")
            p.add_argument("--temper-floor", type=float, default=0.5,
                           help="per-stage incremental ESS floor of the "
                                "tempered bridge (with --temper)")
            p.add_argument("--checkpoint-dir", type=Path, default=None,
                           help="durably persist each completed window's "
                                "posterior to this directory (enables "
                                "--resume after an interruption)")
            p.add_argument("--resume", action="store_true",
                           help="restart from the last complete window in "
                                "--checkpoint-dir instead of from scratch "
                                "(bit-identical to an uninterrupted run)")
            p.add_argument("--checkpoint-keep-last", type=int, default=None,
                           metavar="N",
                           help="after a successful run, prune the "
                                "checkpoint store down to its newest N "
                                "sealed windows (retention GC; never "
                                "deletes unsealed or the latest sealed "
                                "window)")
            p.add_argument("--retry-attempts", type=int, default=1,
                           help="attempts per simulation shard before the "
                                "run fails; >1 enables fault-tolerant "
                                "dispatch with a final in-process fallback")
            p.add_argument("--retry-timeout", type=float, default=None,
                           help="per-shard timeout in seconds (pooled "
                                "executors); timed-out shards are retried")
            p.add_argument("--retry-backoff", type=float, default=0.0,
                           help="seconds of linear backoff between shard "
                                "retry attempts")
            p.add_argument("--scenario", action="append", default=None,
                           metavar="NAME",
                           help="registered scenario to calibrate under "
                                "(repeatable; see `repro scenarios`); more "
                                "than one runs a vectorized multi-world "
                                "sweep with shared random numbers")
            p.add_argument("--scenario-set", default=None, metavar="SET",
                           help="named scenario set to sweep (mutually "
                                "exclusive with --scenario)")
        if name == "forecast":
            p.add_argument("--horizon-days", type=int, default=14)

    sub.add_parser("scenarios",
                   help="list registered scenarios and scenario sets")

    ps = sub.add_parser(
        "serve",
        help="always-on calibration daemon: ingest spool CSVs, calibrate "
             "ready windows, publish sealed forecast artifacts")
    common(ps)
    ps.add_argument("--spool", type=Path, required=True,
                    help="directory watched for tidy day,series,value CSV "
                         "files (write-then-rename; files are immutable "
                         "once dropped)")
    ps.add_argument("--artifacts", type=Path, required=True,
                    help="forecast artifact store root (sealed per-window "
                         "directories; readers may point here any time)")
    ps.add_argument("--checkpoint-dir", type=Path, required=True,
                    help="durable checkpoint store: the service's crash "
                         "recovery point and source of truth")
    ps.add_argument("--quarantine", type=Path, default=None,
                    help="JSONL log of rejected observation rows (default: "
                         "<artifacts>/quarantine.jsonl)")
    ps.add_argument("--window-breaks", default="20,34,48,62,76",
                    help="comma-separated window boundary days "
                         "(default matches fig4/fig5)")
    ps.add_argument("--streams", default="cases",
                    help="comma-separated observation streams to ingest "
                         "(from: cases, deaths; default: cases)")
    ps.add_argument("--draws", type=int, default=300,
                    help="prior parameter draws (paper: 25000)")
    ps.add_argument("--replicates", type=int, default=5,
                    help="common-seed replicates per draw (paper: 20)")
    ps.add_argument("--resample", type=int, default=1000,
                    help="posterior sample size (paper: 10000)")
    ps.add_argument("--poll-seconds", type=float, default=2.0,
                    help="spool re-scan interval while idle")
    ps.add_argument("--deadline-seconds", type=float, default=None,
                    help="soft per-window deadline; a miss logs a "
                         "degradation event but keeps the result")
    ps.add_argument("--restart-attempts", type=int, default=3,
                    help="window restart budget before the service holds "
                         "position (reads keep serving the last sealed "
                         "artifact)")
    ps.add_argument("--restart-backoff", type=float, default=0.0,
                    help="seconds of linear backoff between window restarts")
    ps.add_argument("--retry-attempts", type=int, default=1,
                    help="attempts per simulation shard within a window "
                         "step (the inner fault-tolerance layer)")
    ps.add_argument("--retry-timeout", type=float, default=None,
                    help="per-shard timeout in seconds (pooled executors)")
    ps.add_argument("--retry-backoff", type=float, default=0.0,
                    help="seconds of linear backoff between shard retries")
    ps.add_argument("--keep-last", type=int, default=None, metavar="N",
                    help="retention GC: keep only the newest N sealed "
                         "windows in both the checkpoint and artifact "
                         "stores")
    ps.add_argument("--horizon-days", type=int, default=14,
                    help="forecast horizon published per window")
    ps.add_argument("--forecast-seed", type=int, default=0,
                    help="base seed of the published forecast continuations")
    ps.add_argument("--exit-when-done", action="store_true",
                    help="exit once every scheduled window is sealed "
                         "instead of polling forever (used by tests/CI)")
    return parser


def _policy_options(name: str, args, flag: str) -> dict:
    """Translate the shared CLI knobs into a named policy's options."""
    if name == "ess":
        return {"target_low": args.ess_low, "target_high": args.ess_high,
                "n_min": args.size_min, "n_max": args.size_max}
    if name == "budget":
        if args.step_budget is None:
            raise SystemExit(f"{flag} budget requires --step-budget")
        return {"step_budget": args.step_budget, "n_min": args.size_min,
                "n_max": args.size_max}
    return {}


def _size_policy_options(args) -> dict:
    return _policy_options(args.size_policy, args, "--size-policy")


def _resample_policy_options(args) -> dict:
    return _policy_options(args.resample_policy, args, "--resample-policy")


def _adaptive_config_kwargs(args) -> dict:
    """The adaptive-resampling knobs shared by the sequential commands."""
    return dict(size_policy=args.size_policy,
                size_policy_options=_size_policy_options(args),
                resample_size_policy=args.resample_policy,
                resample_size_policy_options=_resample_policy_options(args),
                temper_degenerate=args.temper,
                temper_threshold=args.temper_threshold,
                temper_ess_floor=args.temper_floor)


def _fault_config_kwargs(args) -> dict:
    """The fault-tolerance knobs shared by the sequential commands."""
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    if args.checkpoint_keep_last is not None:
        if args.checkpoint_dir is None:
            raise SystemExit("--checkpoint-keep-last requires --checkpoint-dir")
        if args.checkpoint_keep_last < 1:
            raise SystemExit("--checkpoint-keep-last must be >= 1")
    return dict(retry_attempts=args.retry_attempts,
                retry_timeout=args.retry_timeout,
                retry_backoff=args.retry_backoff,
                checkpoint_dir=(str(args.checkpoint_dir)
                                if args.checkpoint_dir is not None else None),
                resume=args.resume,
                checkpoint_keep_last=args.checkpoint_keep_last)


def _requested_scenarios(args) -> list[str] | None:
    """Resolve --scenario/--scenario-set into registered names (or None)."""
    chosen = getattr(args, "scenario", None)
    set_name = getattr(args, "scenario_set", None)
    if chosen and set_name:
        raise SystemExit("--scenario and --scenario-set are mutually "
                         "exclusive")
    if set_name is not None:
        try:
            return [spec.name for spec in scenario_set(set_name)]
        except KeyError as exc:
            raise SystemExit(str(exc.args[0]))
    if chosen:
        unknown = sorted(set(chosen) - set(SCENARIOS.names()))
        if unknown:
            raise SystemExit(f"unknown scenario(s) {unknown}; registered: "
                             f"{SCENARIOS.names()}")
        return list(chosen)
    return None


def _cmd_scenarios(args) -> int:
    print("registered scenarios:")
    for spec in SCENARIOS.specs():
        parts = [f"{o.field}={o.value}@d{o.start_day}"
                 for o in spec.overrides]
        detail = "; ".join(parts) if parts else "no overrides"
        if spec.independent_streams:
            detail += " [independent streams]"
        print(f"  {spec.name:<24} {detail}")
        if spec.description:
            print(f"  {'':<24} {spec.description}")
    print("\nscenario sets:")
    for set_name, members in sorted(SCENARIO_SETS.items()):
        print(f"  {set_name:<24} {', '.join(members)}")
    return 0


def _cmd_fig2(args) -> int:
    truth = make_fig2_ground_truth(seed=args.seed, horizon=args.horizon)
    args.out.mkdir(parents=True, exist_ok=True)
    write_series_csv(args.out / "fig2_series.csv", {
        "true_cases": truth.true_cases,
        "observed_cases": truth.observed_cases,
        "deaths": truth.deaths})
    print(f"wrote {args.out / 'fig2_series.csv'}")
    last = truth.true_cases.end_day - 1
    print(f"day {last}: true {truth.true_cases.value_on(last):.0f}, "
          f"observed {truth.observed_cases.value_on(last):.0f}, "
          f"deaths {truth.deaths.value_on(last):.0f}")
    return 0


def _cmd_fig3(args) -> int:
    truth = make_fig2_ground_truth(seed=777, horizon=40)
    executor = make_executor(args.executor, max_workers=args.workers)
    try:
        result = single_shot_importance_sampling(
            truth.observations(), chicago_defaults(),
            paper_first_window_prior(), paper_observation_model(),
            start_day=20, end_day=34, n_parameter_draws=args.draws,
            n_replicates=args.replicates, resample_size=args.resample,
            base_seed=args.seed, executor=executor)
    finally:
        executor.close()
    args.out.mkdir(parents=True, exist_ok=True)
    summary = result.summary()
    write_json(args.out / "fig3_summary.json", summary)
    print(json.dumps(summary, indent=2, default=float))
    return 0


def _sequential(args, include_deaths: bool, label: str) -> int:
    truth = make_fig2_ground_truth(seed=777, horizon=76)
    cfg = CalibrationConfig(
        window_breaks=(20, 34, 48, 62, 76),
        n_parameter_draws=args.draws, n_replicates=args.replicates,
        resample_size=args.resample, theta_jitter_width=0.16,
        rho_jitter_width=0.04, n_continuations=2, base_seed=args.seed,
        executor=args.executor, max_workers=args.workers,
        **_adaptive_config_kwargs(args), **_fault_config_kwargs(args))
    scenario_names = _requested_scenarios(args)
    if scenario_names is not None:
        return _sequential_sweep(args, cfg, include_deaths, label,
                                 scenario_names, truth)
    result = calibrate(truth.observations(include_deaths=include_deaths),
                       cfg, verbose=True)
    args.out.mkdir(parents=True, exist_ok=True)
    result.save_summary(args.out / f"{label}_summary.json")
    print()
    if result.resumed_from is not None:
        print(f"  resumed from window {result.resumed_from} "
              f"(windows 0..{result.resumed_from} restored from "
              f"{args.checkpoint_dir})")
    print(result.describe())
    sizes = ", ".join(str(int(n)) for n in result.ensemble_sizes())
    print(f"  per-window cloud sizes: {sizes} "
          f"({result.total_particle_steps()} particle-steps)")
    posts = ", ".join(str(int(n)) for n in result.resample_sizes())
    print(f"  per-window posterior sizes: {posts}")
    tempered = result.tempered_windows()
    if tempered:
        print(f"  tempered rescue bridged windows: "
              f"{', '.join(str(w) for w in tempered)}")
    print(f"\nwrote {args.out / (label + '_summary.json')}")
    return 0


def _sequential_sweep(args, cfg, include_deaths: bool, label: str,
                      scenario_names: list[str], truth) -> int:
    """Multi-world variant of ``_sequential``: one vectorized sweep."""
    sweep = calibrate_scenarios(
        truth.observations(include_deaths=include_deaths),
        scenarios=scenario_names, config=cfg, verbose=True)
    args.out.mkdir(parents=True, exist_ok=True)
    sweep.save_summary(args.out / f"{label}_scenarios_summary.json")
    print(f"\nsweep over {len(sweep)} scenario(s): "
          f"{sweep.computed_windows} window(s) computed, "
          f"{sweep.reused_windows} reused across identical world-lines")
    for result in sweep:
        result.save_summary(args.out / f"{label}_{result.scenario}_summary.json")
        print(f"\n[{result.scenario}]")
        if result.resumed_from is not None:
            print(f"  resumed from window {result.resumed_from}")
        print(result.describe())
    print(f"\nwrote {args.out / (label + '_scenarios_summary.json')} "
          f"(+ one summary per scenario)")
    return 0


def _cmd_forecast(args) -> int:
    truth = make_fig2_ground_truth(seed=777, horizon=48)
    cfg = CalibrationConfig(
        window_breaks=(20, 34, 48), n_parameter_draws=args.draws,
        n_replicates=args.replicates, resample_size=args.resample,
        base_seed=args.seed, executor=args.executor,
        max_workers=args.workers, **_adaptive_config_kwargs(args),
        **_fault_config_kwargs(args))
    scenario_names = _requested_scenarios(args)
    if scenario_names is not None:
        return _forecast_sweep(args, cfg, scenario_names, truth)
    result = calibrate(truth.observations(include_deaths=True), cfg,
                       verbose=True)
    if result.resumed_from is not None:
        print(f"resumed from window {result.resumed_from}")
    forecast = forecast_from_posterior(result.final_posterior,
                                       horizon_days=args.horizon_days,
                                       base_seed=args.seed)
    ribbon = forecast.ribbon("cases")
    args.out.mkdir(parents=True, exist_ok=True)
    payload = {
        "start_day": forecast.start_day,
        "horizon_days": forecast.horizon_days,
        "days": ribbon.days.tolist(),
        "q05": ribbon.band(0.05).tolist(),
        "q50": ribbon.median().tolist(),
        "q95": ribbon.band(0.95).tolist(),
    }
    write_json(args.out / "forecast.json", payload)
    print(f"\nforecast written to {args.out / 'forecast.json'}; "
          f"median day-{forecast.start_day + args.horizon_days - 1} cases: "
          f"{float(np.asarray(payload['q50'])[-1]):.0f}")
    return 0


def _forecast_sweep(args, cfg, scenario_names: list[str], truth) -> int:
    """Multi-world forecast: sweep-calibrate, then fan the forecast out
    under common random numbers so cross-scenario deltas are scenario
    effects, not Monte Carlo noise."""
    sweep = calibrate_scenarios(truth.observations(include_deaths=True),
                                scenarios=scenario_names, config=cfg,
                                verbose=True)
    forecasts = forecast_scenarios(
        {r.scenario: r.final_posterior for r in sweep},
        horizon_days=args.horizon_days, base_seed=args.seed)
    args.out.mkdir(parents=True, exist_ok=True)
    payload = {}
    for name, forecast in forecasts.items():
        ribbon = forecast.ribbon("cases")
        payload[name] = {
            "start_day": forecast.start_day,
            "horizon_days": forecast.horizon_days,
            "days": ribbon.days.tolist(),
            "q05": ribbon.band(0.05).tolist(),
            "q50": ribbon.median().tolist(),
            "q95": ribbon.band(0.95).tolist(),
        }
    write_json(args.out / "forecast_scenarios.json", payload)
    print(f"\nsweep over {len(sweep)} scenario(s): "
          f"{sweep.computed_windows} window(s) computed, "
          f"{sweep.reused_windows} reused")
    for name in forecasts:
        q50 = payload[name]["q50"]
        print(f"  [{name}] median horizon-end cases: "
              f"{float(np.asarray(q50)[-1]):.0f}")
    print(f"wrote {args.out / 'forecast_scenarios.json'}")
    return 0


def _cmd_serve(args) -> int:
    """Run the always-on calibration service until done or told to stop.

    Drains on SIGTERM/SIGINT: the in-flight window (a signal only sets a
    flag) and one final spool pass complete before a clean exit, so an
    orchestrator's stop never tears state — and could not anyway, since
    checkpoints and artifacts are sealed atomically.  Exit codes: 0 clean
    (drained or ``--exit-when-done``), 3 a window exhausted its restart
    budget (restarting the daemon grants a fresh one).
    """
    from .core.smc import SequentialCalibrator
    from .data.loaders import _DEFAULT_STREAMS
    from .hpc import CheckpointStore, RetryPolicy
    from .service import (ArtifactStore, CalibrationService,
                          ObservationBuffer, ServiceConfig, SpoolIngest)

    try:
        breaks = tuple(int(b) for b in args.window_breaks.split(","))
    except ValueError:
        raise SystemExit(f"--window-breaks must be comma-separated integers, "
                         f"got {args.window_breaks!r}")
    stream_names = tuple(s.strip() for s in args.streams.split(",") if s.strip())
    unknown = [s for s in stream_names if s not in _DEFAULT_STREAMS]
    if unknown:
        raise SystemExit(f"--streams {unknown} not in "
                         f"{sorted(_DEFAULT_STREAMS)}")
    if args.keep_last is not None and args.keep_last < 1:
        raise SystemExit("--keep-last must be >= 1")

    cfg = CalibrationConfig(
        window_breaks=breaks, n_parameter_draws=args.draws,
        n_replicates=args.replicates, resample_size=args.resample,
        base_seed=args.seed, executor=args.executor,
        max_workers=args.workers, retry_attempts=args.retry_attempts,
        retry_timeout=args.retry_timeout, retry_backoff=args.retry_backoff)
    executor = cfg.make_executor()
    service_config = ServiceConfig(
        restart=RetryPolicy(max_attempts=args.restart_attempts,
                            timeout_seconds=args.deadline_seconds,
                            backoff_seconds=args.restart_backoff),
        horizon_days=args.horizon_days, forecast_seed=args.forecast_seed,
        keep_last=args.keep_last)
    quarantine = (args.quarantine if args.quarantine is not None
                  else args.artifacts / "quarantine.jsonl")

    stop = {"requested": False}

    def _request_stop(signum, frame):  # noqa: ARG001 — signal signature
        stop["requested"] = True
        print(f"received signal {signum}; draining (in-flight window and "
              "spooled data finish, then clean exit)", flush=True)

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)

    try:
        calibrator = SequentialCalibrator(
            base_params=cfg.disease_params(None), prior=cfg.prior(),
            jitter=cfg.jitter(), observation_model=cfg.observation_model(),
            schedule=cfg.schedule(), config=cfg.smc_config(),
            executor=executor,
            progress=lambda msg: print(f"  {msg}", flush=True))
        service = CalibrationService(
            calibrator, CheckpointStore(args.checkpoint_dir),
            ArtifactStore(args.artifacts), service_config,
            progress=lambda msg: print(msg, flush=True))
        resumed = service.resume()
        if resumed is None:
            print(f"fresh run: {len(cfg.schedule())} windows scheduled, "
                  f"watching {args.spool}", flush=True)
        # The buffer starts at the resumed frontier so a post-crash spool
        # re-scan silently skips already-calibrated history instead of
        # flagging it out-of-order.
        frontier = (cfg.schedule()[service.head].end_day
                    if service.head is not None else 0)
        buffer = ObservationBuffer(
            streams={name: _DEFAULT_STREAMS[name] for name in stream_names},
            frontier=frontier)
        ingest = SpoolIngest(args.spool, buffer, quarantine_path=quarantine)

        while True:
            rejected = ingest.scan()
            if rejected:
                print(f"quarantined {len(rejected)} rejected row(s) -> "
                      f"{quarantine}", flush=True)
            service.tick(buffer)
            if service.failed_window is not None:
                print(f"window {service.failed_window} exhausted its "
                      f"restart budget; holding position — restart the "
                      "daemon for a fresh budget", flush=True)
                return 3
            if service.done:
                print("all scheduled windows calibrated and published",
                      flush=True)
                if args.exit_when_done:
                    return 0
            if stop["requested"]:
                head = service.head
                print(f"drained; head window: "
                      f"{head if head is not None else 'none'}", flush=True)
                return 0
            time.sleep(args.poll_seconds)
    finally:
        executor.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig2":
        return _cmd_fig2(args)
    if args.command == "fig3":
        return _cmd_fig3(args)
    if args.command == "fig4":
        return _sequential(args, include_deaths=False, label="fig4")
    if args.command == "fig5":
        return _sequential(args, include_deaths=True, label="fig5")
    if args.command == "forecast":
        return _cmd_forecast(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
