"""Tempered rescue of degenerate windows, and a policy-driven posterior size.

The paper's section VI warns that SIS weights can "concentrate on just a
few draws".  When that happens inside a window, a single multinomial
resampling pass collapses the posterior onto a handful of ancestors and the
next window inherits a starved parent set.  The calibrator can instead
route such windows through the staged tempered bridge
(``repro.core.adaptive.temper_and_resample``): the likelihood is raised
through adaptively chosen exponents ``0 < beta_1 < ... < 1``, reweighting
and resampling among the window's *already simulated* trajectories at each
stage — so the rescue costs zero extra particle-steps — with a low-variance
systematic resampler keeping per-stage noise down.

This example runs a deliberately degenerate scenario (a likelihood sharp
enough that every window's ESS fraction collapses below the 5% degeneracy
threshold) three ways — the plain pass, the tempered rescue, and the rescue
composed with an ESS-driven ``resample_size_policy`` that grows the
posterior on degenerate windows — and prints each run's per-window bridge
schedules, unique ancestors, and theta tracks against the known truth.
Tempered runs stay bit-reproducible: the bridge draws from the same
window-indexed resampling stream as the plain pass.

Run:  python examples/tempered_rescue.py
"""

from __future__ import annotations

from repro import CalibrationConfig, calibrate
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


def run(truth, label: str, **overrides):
    config = CalibrationConfig(
        window_breaks=(12, 20, 28, 36, 44, 52),
        n_parameter_draws=150, n_replicates=2, resample_size=300,
        sigma=0.5,  # sharp likelihood: every window degenerates
        base_seed=44, **overrides)
    result = calibrate(truth.observations(), config,
                       base_params=truth.params)
    print(f"\n{label}")
    print("  posterior sizes  : "
          + ", ".join(str(int(n)) for n in result.resample_sizes()))
    print("  tempered windows : "
          f"{result.tempered_windows() or 'none'}")
    track = result.parameter_track("theta")
    covered = 0
    for w, wr in enumerate(result.windows):
        d = wr.diagnostics
        lo, hi = track.ci90[w]
        true_theta = truth.theta_true(wr.window.end_day - 1)
        covered += int(lo <= true_theta <= hi)
        bridge = (f"{d.temper_stages}-stage bridge"
                  if d.tempered else "plain pass")
        print(f"  {wr.window.label():>12}: ESS {100 * d.ess_fraction:5.1f}% | "
              f"{bridge:>15} | {d.unique_ancestors:3d} ancestors | "
              f"theta [{lo:.3f}, {hi:.3f}] (truth {true_theta:.2f})")
    print(f"  CI90 theta coverage: {covered}/{len(result.windows)} | "
          f"{result.total_particle_steps()} particle-steps")
    return result


def main() -> None:
    params = DiseaseParameters(population=60_000, initial_exposed=120)
    truth = make_ground_truth(
        params=params, horizon=52, seed=99,
        theta_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                         values=(0.32, 0.22, 0.28)),
        rho_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                       values=(0.6, 0.85, 0.8)))

    plain = run(truth, "plain multinomial pass (the classic behaviour)")

    tempered = run(truth, "tempered rescue (temper_degenerate=True)",
                   temper_degenerate=True, temper_ess_floor=0.25)

    # Compose the bridge with a posterior-size policy: degenerate windows
    # both bridge *and* grow the resampled posterior (free in
    # particle-steps — the posterior is never re-simulated).
    run(truth, "tempered rescue + ESS-driven resample_size_policy",
        temper_degenerate=True, temper_ess_floor=0.25,
        resample_size_policy="ess",
        resample_size_policy_options={"target_low": 0.05,
                                      "target_high": 0.5,
                                      "n_min": 150, "n_max": 1200})

    assert plain.total_particle_steps() == tempered.total_particle_steps()
    print("\nThe rescue is free in particle-steps: both runs simulated "
          f"{plain.total_particle_steps()} particle-days.  "
          "benchmarks/bench_tempering.py asserts the coverage win in CI.")


if __name__ == "__main__":
    main()
