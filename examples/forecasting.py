"""Posterior predictive forecasting from a calibrated model.

Calibrates to the first 24 days of biased case counts, then forecasts 14
days ahead by restarting every posterior particle from its checkpoint — the
"plausible epidemic trajectories for probabilistic assessment" use case of
the paper's discussion section.  Compares the forecast band against what the
truth simulator actually did.

Run:  python examples/forecasting.py
"""

from __future__ import annotations

import numpy as np

from repro import CalibrationConfig, calibrate, forecast_from_posterior
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth
from repro.viz import ribbon_plot


def main() -> None:
    params = DiseaseParameters(population=150_000, initial_exposed=300)
    truth = make_ground_truth(
        params=params, horizon=38, seed=63,
        theta_schedule=PiecewiseConstant.constant(0.28),
        rho_schedule=PiecewiseConstant.constant(0.7))

    # Calibrate on days 8-24 only; days 24-38 are held out.
    config = CalibrationConfig(window_breaks=(8, 16, 24),
                               n_parameter_draws=150, n_replicates=3,
                               resample_size=200, base_seed=29)
    obs_visible = truth.observations().window(0, 24)
    result = calibrate(obs_visible, config, base_params=params, verbose=True)
    print()
    print(result.describe())

    # Forecast 14 days past the last calibrated day, 2 continuations per
    # particle so the band includes simulator stochasticity.
    forecast = forecast_from_posterior(result.final_posterior,
                                       horizon_days=14, n_per_particle=2,
                                       base_seed=101)
    ribbon = forecast.ribbon("cases")

    held_out = truth.true_cases.window(24, 38)
    print("\nForecast vs held-out truth (true daily infections):")
    print(ribbon_plot(ribbon.days, ribbon.band(0.05), ribbon.band(0.95),
                      ribbon.median(), truth=held_out.values, height=12,
                      title="14-day forecast (o = held-out truth)"))

    coverage = ribbon.coverage_of(held_out.values, 0.05, 0.95)
    median_ape = float(np.median(
        np.abs(ribbon.median() - held_out.values)
        / np.maximum(held_out.values, 1)))
    print(f"\n90% forecast band covers the held-out truth on "
          f"{100 * coverage:.0f}% of days; median absolute relative error "
          f"of the point forecast: {100 * median_ape:.0f}%")


if __name__ == "__main__":
    main()
