"""Calibrating to cases AND deaths (the Figure 5 workflow).

Runs the same sequential calibration twice — once against reported cases
only, once with the unbiased death stream added — and quantifies the
paper's Fig 5 claim: the second data source constrains the (theta, rho)
posterior further, because deaths anchor the *scale* of the epidemic that
the reporting probability would otherwise trade off against.

Run:  python examples/multi_source_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro import CalibrationConfig, calibrate
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


def main() -> None:
    params = DiseaseParameters(population=150_000, initial_exposed=300)
    truth = make_ground_truth(
        params=params, horizon=30, seed=33,
        theta_schedule=PiecewiseConstant(breakpoints=(18,),
                                         values=(0.30, 0.24)),
        rho_schedule=PiecewiseConstant.constant(0.65))

    config = CalibrationConfig(window_breaks=(8, 18, 30),
                               n_parameter_draws=200, n_replicates=3,
                               resample_size=250, base_seed=17)

    print("Calibrating to case counts only...")
    cases_only = calibrate(truth.observations(include_deaths=False), config,
                           base_params=params)
    print("Calibrating to case counts AND deaths...")
    with_deaths = calibrate(truth.observations(include_deaths=True), config,
                            base_params=params)

    print("\n                         cases only        cases + deaths    truth")
    for i, wr in enumerate(cases_only.windows):
        mid = (wr.window.start_day + wr.window.end_day) // 2
        for name in ("theta", "rho"):
            a = cases_only.windows[i].summary()[name]
            b = with_deaths.windows[i].summary()[name]
            true_val = (truth.theta_true(mid) if name == "theta"
                        else truth.rho_true(mid))
            print(f"  {wr.window.label():12s} {name:5s} "
                  f"{a['mean']:.3f} [{a['ci90'][0]:.3f},{a['ci90'][1]:.3f}]  "
                  f"{b['mean']:.3f} [{b['ci90'][0]:.3f},{b['ci90'][1]:.3f}]  "
                  f"{true_val:.2f}")

    def mean_width(result, name):
        track = result.parameter_track(name)
        return float(np.mean(track.ci90[:, 1] - track.ci90[:, 0]))

    for name in ("theta", "rho"):
        w_cases = mean_width(cases_only, name)
        w_both = mean_width(with_deaths, name)
        change = 100.0 * (1.0 - w_both / w_cases) if w_cases else 0.0
        print(f"\n{name}: mean 90% CI width {w_cases:.3f} (cases) -> "
              f"{w_both:.3f} (cases+deaths), {change:+.0f}% tighter")

    # rho identifiability: deaths pin the true epidemic size, so the rho
    # estimate should sit closer to the truth than in the cases-only run.
    rho_true = truth.rho_true(20)
    err_cases = abs(cases_only.parameter_track("rho").means.mean() - rho_true)
    err_both = abs(with_deaths.parameter_track("rho").means.mean() - rho_true)
    print(f"\nrho estimation error: {err_cases:.3f} (cases) vs "
          f"{err_both:.3f} (cases+deaths)")


if __name__ == "__main__":
    main()
