"""Checkpoint/restart mechanics and counterfactual scenario branching.

Demonstrates the machinery of paper section III-B directly:

1. run an epidemic to day 40 and serialise the full simulator state
   (compartment occupancy, clock, RNG stream) to a JSON file;
2. restart bit-exactly and verify the continuation is identical;
3. branch *counterfactual scenarios* from the same day-40 state — e.g.
   "what if an intervention halves transmission?" — which is exactly how
   calibrated models support intervention planning (section VI);
4. show the computational saving versus re-simulating from day 0.

Run:  python examples/checkpoint_restart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.seir import (Checkpoint, DiseaseParameters, ParameterOverride,
                        StochasticSEIRModel)
from repro.viz import multi_line_plot


def main() -> None:
    params = DiseaseParameters(population=200_000, initial_exposed=400)

    # --- 1. simulate and checkpoint ----------------------------------------
    model = StochasticSEIRModel(params, seed=42)
    model.run_until(40)
    checkpoint = model.checkpoint()
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "day40.ckpt.json"
        checkpoint.save(path)
        print(f"Checkpointed day-40 state to {path.name} "
              f"({path.stat().st_size} bytes)")
        restored = Checkpoint.load(path)

    # --- 2. bit-exact resume -------------------------------------------------
    continued = model.run_until(70)
    replay = StochasticSEIRModel.from_checkpoint(restored).run_until(70)
    identical = np.array_equal(continued.infections, replay.infections)
    print(f"Bit-exact resume from file: {identical}")

    # --- 3. counterfactual branching ----------------------------------------
    scenarios = {
        "no change": ParameterOverride(seed=1),
        "intervention (theta x 0.5)": ParameterOverride(
            seed=1, transmission_rate=params.transmission_rate * 0.5),
        "new variant (theta x 1.5)": ParameterOverride(
            seed=1, transmission_rate=params.transmission_rate * 1.5),
    }
    print("\nBranching three scenarios from the same day-40 state:")
    curves = {}
    for label, override in scenarios.items():
        branch = StochasticSEIRModel.from_checkpoint(restored, override)
        traj = branch.run_until(70)
        curves[label] = traj.infections
        print(f"  {label:28s} day-69 daily infections: "
              f"{traj.infections[-1]:8.0f}   deaths to day 70: "
              f"{traj.total_deaths():5.0f}")
    print()
    print(multi_line_plot(
        [np.maximum(c, 1) for c in curves.values()],
        markers=["o", "-", "+"], log_scale=True, height=12,
        title="daily infections, day 40-70  (o: baseline, -: intervention, +: variant)"))

    # --- 4. the computational saving ----------------------------------------
    n = 50
    t0 = time.perf_counter()
    for k in range(n):
        StochasticSEIRModel.from_checkpoint(
            restored, ParameterOverride(seed=k)).run_until(54)
    warm = time.perf_counter() - t0
    t0 = time.perf_counter()
    for k in range(n):
        StochasticSEIRModel(params, seed=k).run_until(54)
    cold = time.perf_counter() - t0
    print(f"\n{n} fourteen-day continuations: {warm:.2f}s from checkpoints "
          f"vs {cold:.2f}s from day 0 ({cold / warm:.1f}x saving)")


if __name__ == "__main__":
    main()
