"""Sequential calibration across four windows (the Figure 4 workflow).

A faithful small-scale rerun of the paper's main experiment: the
transmission rate *and* the reporting probability both change over time, the
calibrator sees only the biased case counts, and each window's posterior
(plus checkpoints) seeds the next window's prior.

Outputs per-window posterior summaries against the known truth, the joint
(theta, rho) posterior as an ASCII density, and CSV exports matching the
paper's figure panels.

Run:  python examples/sequential_calibration.py
"""

from __future__ import annotations

from pathlib import Path

from repro import CalibrationConfig, calibrate
from repro.core import joint_density_grid
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth
from repro.viz import density_grid_plot, write_density_csv, write_ribbon_csv

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    # Time-varying truth on both parameters (shrunken Fig 2 schedules).
    params = DiseaseParameters(population=150_000, initial_exposed=300)
    theta_schedule = PiecewiseConstant(breakpoints=(16, 26),
                                       values=(0.32, 0.24, 0.38))
    rho_schedule = PiecewiseConstant(breakpoints=(16, 26),
                                     values=(0.60, 0.75, 0.85))
    truth = make_ground_truth(params=params, horizon=36, seed=21,
                              theta_schedule=theta_schedule,
                              rho_schedule=rho_schedule)

    config = CalibrationConfig(
        window_breaks=(6, 16, 26, 36),
        n_parameter_draws=200, n_replicates=3, resample_size=250,
        theta_jitter_width=0.08, rho_jitter_width=0.03,
        base_seed=5)
    result = calibrate(truth.observations(), config, base_params=params,
                       verbose=True)

    OUTPUT.mkdir(exist_ok=True)
    print("\nWindow-by-window posterior vs truth:")
    for i, wr in enumerate(result.windows):
        mid = (wr.window.start_day + wr.window.end_day) // 2
        s = wr.summary()
        print(f"  {s['window']}: "
              f"theta {s['theta']['mean']:.3f} (truth {theta_schedule(mid):.2f}) "
              f"rho {s['rho']['mean']:.3f} (truth {rho_schedule(mid):.2f}) "
              f"ESS% {100 * s['ess_fraction']:.1f}")

        theta = wr.posterior.values("theta")
        rho = wr.posterior.values("rho")
        xe, ye, dens = joint_density_grid(theta, rho, bins=18,
                                          x_range=(0.1, 0.5),
                                          y_range=(0.3, 1.0))
        write_density_csv(OUTPUT / f"sequential_joint_w{i}.csv", xe, ye,
                          dens, x_name="theta", y_name="rho")

    # Show the last window's joint posterior as text (Fig 4b stand-in).
    theta = result.final_posterior.values("theta")
    rho = result.final_posterior.values("rho")
    _, _, dens = joint_density_grid(theta, rho, bins=18,
                                    x_range=(0.1, 0.5), y_range=(0.3, 1.0))
    print("\nJoint (theta, rho) posterior, final window "
          "(x: theta 0.1-0.5, y: rho 0.3-1.0):")
    print(density_grid_plot(dens))

    ribbon = result.posterior_ribbon("cases")
    write_ribbon_csv(OUTPUT / "sequential_true_cases_ribbon.csv", ribbon,
                     truth=truth.true_cases)
    print(f"\nCSV outputs in {OUTPUT}/")


if __name__ == "__main__":
    main()
