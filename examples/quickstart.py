"""Quickstart: simulate an epidemic, bias the observations, calibrate.

Runs the paper's workflow end to end at small scale (about a minute on a
laptop): a stochastic SEIR ground truth with time-varying transmission, a
binomially thinned case stream, and a two-window sequential calibration that
recovers the transmission rate.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CalibrationConfig, calibrate
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth
from repro.viz import line_plot


def main() -> None:
    # --- 1. a synthetic epidemic with a mid-course transmission drop -------
    params = DiseaseParameters(population=100_000, initial_exposed=200)
    truth = make_ground_truth(
        params=params, horizon=32, seed=7,
        theta_schedule=PiecewiseConstant(breakpoints=(18,),
                                         values=(0.32, 0.22)),
        rho_schedule=PiecewiseConstant.constant(0.7))
    print("Simulated ground truth (true daily infections):")
    print(line_plot(np.maximum(truth.true_cases.values, 1),
                    height=10, log_scale=True))
    print(f"\nTruth: theta = 0.32 before day 18, 0.22 after; "
          f"reporting probability rho = 0.7\n")

    # --- 2. calibrate against the *observed* (thinned) case counts ---------
    config = CalibrationConfig(
        window_breaks=(8, 18, 32),       # two windows straddling the change
        n_parameter_draws=150,
        n_replicates=3,
        resample_size=200,
        base_seed=11,
    )
    result = calibrate(truth.observations(), config, base_params=params,
                       verbose=True)

    # --- 3. inspect the sequential posterior -------------------------------
    print()
    print(result.describe())
    track = result.parameter_track("theta")
    print("\nPer-window transmission-rate estimates vs truth:")
    for i, label in enumerate(track.window_labels):
        mid = (config.window_breaks[i] + config.window_breaks[i + 1]) // 2
        print(f"  {label}: estimate {track.means[i]:.3f} "
              f"(90% CI {track.ci90[i][0]:.3f}-{track.ci90[i][1]:.3f}), "
              f"truth {truth.theta_true(mid):.2f}")

    ribbon = result.posterior_ribbon("cases")
    coverage = ribbon.coverage_of(truth.true_cases.values, 0.05, 0.95)
    print(f"\n90% posterior ribbon covers the true-case series on "
          f"{100 * coverage:.0f}% of days")


if __name__ == "__main__":
    main()
