"""HPC execution patterns: executors, SPMD collectives, schedulers, stores.

Walks through the parallel substrate the calibration framework runs on —
the pieces that, on a cluster, would be provided by MPI ranks and a shared
file system:

1. executor backends for the embarrassingly parallel ensemble step;
2. the MPI-style SPMD pattern for distributed weight normalisation;
3. scheduling policies for heterogeneous window workloads;
4. the per-window checkpoint store a long campaign would restart from.

Run:  python examples/hpc_patterns.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.hpc import (CheckpointStore, ProcessExecutor, SerialExecutor,
                       block_partition, compare_policies, run_spmd)
from repro.seir import DiseaseParameters, StochasticSEIRModel, chicago_defaults
from repro.sim import common_seed_grid, run_ensemble


def demo_executors() -> None:
    print("=== 1. Executor backends (fixed 60-member ensemble) ===")
    rng = np.random.Generator(np.random.PCG64(1))
    spec = common_seed_grid(
        param_updates=[{"transmission_rate": float(t)}
                       for t in rng.uniform(0.15, 0.45, 30)],
        seeds=[5, 6], base_params=chicago_defaults(), end_day=34)
    t0 = time.perf_counter()
    serial = run_ensemble(spec, SerialExecutor())
    t_serial = time.perf_counter() - t0
    cores = os.cpu_count() or 1
    with ProcessExecutor(max_workers=cores) as ex:
        run_ensemble(spec, ex)  # warm the pool
        t0 = time.perf_counter()
        parallel = run_ensemble(spec, ex)
        t_pool = time.perf_counter() - t0
    same = all(np.array_equal(a.infections, b.infections)
               for a, b in zip(serial.trajectories, parallel.trajectories))
    print(f"  serial {t_serial:.2f}s vs {cores}-process pool {t_pool:.2f}s "
          f"({t_serial / t_pool:.2f}x); identical results: {same}\n")


def spmd_weight_step(comm, log_weights):
    """What each MPI rank would run for one calibration window."""
    chunks = None
    if comm.rank == 0:
        parts = block_partition(len(log_weights), comm.size)
        chunks = [np.asarray(log_weights)[p] for p in parts]
    mine = comm.scatter(chunks, root=0)
    local = float(np.logaddexp.reduce(mine)) if len(mine) else float("-inf")
    normaliser = comm.allreduce(local, op="logsumexp")
    # Each rank normalises its own block; root gathers the block ESS terms.
    w = np.exp(np.asarray(mine) - normaliser)
    ess_terms = comm.gather(float((w ** 2).sum()), root=0)
    if comm.rank == 0:
        return 1.0 / sum(ess_terms)
    return None


def demo_spmd() -> None:
    print("=== 2. SPMD collectives: distributed weight normalisation ===")
    rng = np.random.Generator(np.random.PCG64(2))
    log_weights = rng.normal(-300, 5, size=1000)
    results = run_spmd(spmd_weight_step, 2, args=(log_weights,))
    w = np.exp(log_weights - np.logaddexp.reduce(log_weights))
    print(f"  ESS from 2 ranks: {results[0]:.1f}  "
          f"(serial reference {1.0 / float((w ** 2).sum()):.1f})\n")


def demo_scheduling() -> None:
    print("=== 3. Scheduling heterogeneous window tasks (8 workers) ===")
    rng = np.random.Generator(np.random.PCG64(3))
    costs = np.repeat([1.0, 1.7, 2.8, 4.5], 40) * rng.lognormal(0, 0.3, 160)
    for name, res in compare_policies(costs, 8).items():
        print(f"  {name:14s} makespan {res.makespan:7.1f}  "
              f"efficiency {res.efficiency:.2f}")
    print()


def demo_store() -> None:
    print("=== 4. Checkpoint store: resuming an interrupted campaign ===")
    params = DiseaseParameters(population=50_000, initial_exposed=100)
    with tempfile.TemporaryDirectory() as tmp:
        store = CheckpointStore(tmp, run_id="campaign-01")
        for window, end_day in enumerate((10, 20)):
            checkpoints = []
            for seed in range(4):
                model = StochasticSEIRModel(params, seed)
                model.run_until(end_day)
                checkpoints.append(model.checkpoint())
            store.save_window(window, checkpoints)
        window, checkpoints = store.latest_restart_point()
        print(f"  restart point: window {window} with "
              f"{len(checkpoints)} particles at day {checkpoints[0].day}")
        resumed = StochasticSEIRModel.from_checkpoint(checkpoints[0])
        resumed.run_until(25)
        print(f"  resumed particle 0 to day {resumed.day}; population "
              f"conserved: {resumed.population_conserved()}")


def main() -> None:
    demo_executors()
    demo_spmd()
    demo_scheduling()
    demo_store()


if __name__ == "__main__":
    main()
