"""Adaptive ensemble sizing: spend particles only where the data need them.

The paper's section VI warns that SIS weights can "concentrate on just a
few draws"; the classic fix is a bigger ensemble, but a fixed size pays
that cost in *every* window.  The adaptive ensemble-size controller
(``repro.core.ensemble_control``) instead watches each window's
post-weighting ESS fraction and resizes the next window's proposal cloud:
grow when the weights concentrate, shrink once the posterior has
converged, always within ``[n_min, n_max]``.

This example runs the same synthetic scenario three ways — fixed size, an
ESS-target policy, and a particle-step budget — and prints each run's
per-window cloud sizes, total particle-steps (particle-days of
simulation), and posterior tracks.  Adaptive runs stay bit-reproducible:
rerunning with the same base seed, policy, and shard layout reproduces
identical posteriors.

Run:  python examples/adaptive_sizing.py
"""

from __future__ import annotations

from repro import CalibrationConfig, calibrate
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth


def run(truth, label: str, **overrides):
    config = CalibrationConfig(
        window_breaks=(12, 20, 28, 36, 44, 52),
        n_parameter_draws=200, n_replicates=2, resample_size=400,
        sigma=2.0, base_seed=41, **overrides)
    result = calibrate(truth.observations(), config,
                       base_params=truth.params)
    sizes = ", ".join(str(int(n)) for n in result.ensemble_sizes())
    print(f"\n{label}")
    print(f"  per-window cloud sizes : {sizes}")
    print(f"  total particle-steps   : {result.total_particle_steps()}")
    print(f"  ESS fractions          : "
          + ", ".join(f"{f:.2f}" for f in result.ess_fractions()))
    track = result.parameter_track("theta")
    for w, wr in enumerate(result.windows):
        lo, hi = track.ci90[w]
        true_theta = truth.theta_true(wr.window.end_day - 1)
        print(f"  {wr.window.label():>12}: theta {track.means[w]:.3f} "
              f"[{lo:.3f}, {hi:.3f}] (truth {true_theta:.2f})")
    return result


def main() -> None:
    params = DiseaseParameters(population=60_000, initial_exposed=120)
    truth = make_ground_truth(
        params=params, horizon=52, seed=99,
        theta_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                         values=(0.32, 0.22, 0.28)),
        rho_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                       values=(0.6, 0.85, 0.8)))

    fixed = run(truth, "fixed size (the classic behaviour)")

    # Grow below 5% ESS, shrink above 20%, never leave [100, 1600].
    adaptive = run(truth, "ESS-target policy (size_policy='ess')",
                   size_policy="ess",
                   size_policy_options={"target_low": 0.05,
                                        "target_high": 0.2,
                                        "n_min": 100, "n_max": 1600})

    # Hard cap: at most 2400 particle-days per window, whatever the ESS.
    run(truth, "per-window particle-step budget (size_policy='budget')",
        size_policy="budget",
        size_policy_options={"step_budget": 2400, "n_min": 100})

    saved = 1 - adaptive.total_particle_steps() / fixed.total_particle_steps()
    print(f"\nESS-target run saved {saved:.0%} of the fixed baseline's "
          "particle-steps at comparable posterior coverage "
          "(benchmarks/bench_adaptive.py asserts this tradeoff in CI).")


if __name__ == "__main__":
    main()
