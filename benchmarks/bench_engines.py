"""Engine ablation — binomial-leap vs exact SSA vs event-driven vs batched.

A DESIGN.md design choice: the paper's CMS simulator is event-driven; our
workhorse is the vectorised binomial leap.  This bench validates that choice
by measuring (a) distributional agreement of attack rates and deaths on a
small population where the exact SSA is feasible, and (b) the throughput gap
that makes the leap engine the only viable option at Chicago scale.  A third
test sweeps the batched ensemble engine across ensemble sizes against the
scalar leap loop and emits a machine-readable comparison matrix alongside
the existing ablation outputs.
"""

from __future__ import annotations

import time

import numpy as np

from _bench_util import once
from repro.seir import (BatchedBinomialLeapEngine, BinomialLeapEngine,
                        DiseaseParameters, EventDrivenEngine, GillespieEngine)
from repro.viz import write_json

SMALL = DiseaseParameters(population=3_000, initial_exposed=30,
                          transmission_rate=0.35)
N_REPS = 10
HORIZON = 50


def _stats(engine_cls, **kwargs):
    attack, deaths = [], []
    t0 = time.perf_counter()
    for seed in range(N_REPS):
        traj = engine_cls(SMALL, seed=seed + 50, **kwargs).run_until(HORIZON)
        attack.append(traj.total_infections() / SMALL.population)
        deaths.append(traj.total_deaths())
    seconds = time.perf_counter() - t0
    return {"attack_mean": float(np.mean(attack)),
            "attack_sd": float(np.std(attack)),
            "deaths_mean": float(np.mean(deaths)),
            "seconds_per_run": seconds / N_REPS}


def test_engine_agreement_and_throughput(benchmark, output_dir):
    ssa = _stats(GillespieEngine)
    event = _stats(EventDrivenEngine, infection_slices_per_day=8)
    leap = once(benchmark, lambda: _stats(BinomialLeapEngine, steps_per_day=8))

    summary = {"population": SMALL.population, "horizon": HORIZON,
               "replicates": N_REPS,
               "binomial_leap": leap, "gillespie": ssa, "event_driven": event}
    write_json(output_dir / "engines_ablation.json", summary)
    print("\nengine ablation (3k population, 50 days):")
    for name in ("binomial_leap", "gillespie", "event_driven"):
        row = summary[name]
        print(f"  {name}: attack {row['attack_mean']:.3f} "
              f"(sd {row['attack_sd']:.3f}), "
              f"{1000 * row['seconds_per_run']:.1f} ms/run")

    # Distributional agreement with the exact law.
    np.testing.assert_allclose(leap["attack_mean"], ssa["attack_mean"],
                               rtol=0.2)
    np.testing.assert_allclose(event["attack_mean"], ssa["attack_mean"],
                               rtol=0.2)
    # Throughput: the leap engine's per-run cost must not scale with the
    # event count the way the SSA does (at 3k pop SSA is already slower).
    assert leap["seconds_per_run"] < ssa["seconds_per_run"]


def test_leap_cost_independent_of_population(benchmark, output_dir):
    """The leap engine's defining property: cost ~ O(days), not O(events)."""
    def run(pop):
        params = DiseaseParameters(population=pop,
                                   initial_exposed=max(10, pop // 5000))
        t0 = time.perf_counter()
        BinomialLeapEngine(params, seed=4).run_until(60)
        return time.perf_counter() - t0

    small_s = run(10_000)
    big_s = once(benchmark, lambda: run(2_700_000))
    write_json(output_dir / "engines_population_scaling.json", {
        "seconds_10k": small_s, "seconds_2p7m": big_s})
    print(f"\nleap engine: 10k pop {1000 * small_s:.1f} ms vs "
          f"2.7M pop {1000 * big_s:.1f} ms for 60 days")
    # Within an order of magnitude despite a 270x population ratio.
    assert big_s < 10 * small_s + 0.05


def test_batched_engine_matrix(benchmark, output_dir):
    """Batched vs scalar leap across ensemble sizes (machine-readable)."""
    def sweep():
        rows = {}
        for n in (64, 256, 1024):
            seeds = np.arange(n) + 900
            t0 = time.perf_counter()
            scalar_attack = np.empty(n)
            for i, seed in enumerate(seeds):
                traj = BinomialLeapEngine(SMALL, seed=int(seed),
                                          steps_per_day=4).run_until(HORIZON)
                scalar_attack[i] = traj.total_infections() / SMALL.population
            scalar_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            batch = BatchedBinomialLeapEngine(
                SMALL, seeds, steps_per_day=4).run_until(HORIZON)
            batched_s = time.perf_counter() - t0
            batched_attack = batch.infections.sum(axis=1) / SMALL.population
            rows[str(n)] = {
                "scalar_seconds": scalar_s,
                "batched_seconds": batched_s,
                "speedup": scalar_s / batched_s,
                "scalar_attack_mean": float(scalar_attack.mean()),
                "batched_attack_mean": float(batched_attack.mean()),
            }
        return rows

    rows = once(benchmark, sweep)
    summary = {"population": SMALL.population, "horizon": HORIZON,
               "engines": ("binomial_leap", "binomial_leap_batched"),
               "sizes": rows}
    write_json(output_dir / "engines_batched_matrix.json", summary)
    print("\nbatched engine matrix (3k population, 50 days):")
    for n, row in rows.items():
        print(f"  n={n}: scalar {row['scalar_seconds']:.2f}s, "
              f"batched {row['batched_seconds']:.3f}s "
              f"({row['speedup']:.1f}x), attack "
              f"{row['scalar_attack_mean']:.3f} vs "
              f"{row['batched_attack_mean']:.3f}")
        # Distributional agreement with the scalar oracle.
        np.testing.assert_allclose(row["batched_attack_mean"],
                                   row["scalar_attack_mean"], rtol=0.2)
    # Batching must win, and win more at larger ensembles.
    assert rows["1024"]["speedup"] > 1.0
    assert rows["1024"]["speedup"] >= rows["64"]["speedup"] * 0.5
