"""Helpers shared by the benchmark modules (kept out of conftest so the
import name never collides with the test suite's conftest)."""

from __future__ import annotations

import json
import time
from pathlib import Path


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def time_best(fn, repeats: int):
    """Best-of-``repeats`` wall time; returns ``(seconds, last_result)``."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def write_payload(payload: dict, output: Path) -> None:
    """Write a benchmark JSON payload, creating parent directories."""
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps(payload, indent=2) + "\n")
