"""Helpers shared by the benchmark modules (kept out of conftest so the
import name never collides with the test suite's conftest)."""

from __future__ import annotations


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
