"""Scenario-sweep benchmark: many worlds batched vs sequential calibrations.

The scenario axis claims its batching is *free and then profitable*: every
scenario of a :class:`~repro.core.scenarios.ScenarioSweep` is bit-identical
to running that scenario alone (the parity oracles assert this; so does
this bench), while common random numbers plus world-line deduplication make
the sweep strictly cheaper than S standalone runs.  For the default
4-scenario set over the paper-style breaks (20, 34, 48, 62) the overrides
land at days 34/48, so the sweep computes 7 world-line windows (1 shared,
then 2-way, then 4-way splits) where the sequential loop computes 12 — a
~1.7x bound on window work.

Measured here at one calibration window's paper-bench scale (2,000
particles x 14-day continuation windows by default): wall time of the
sweep vs the summed wall time of the four standalone calibrations, same
config and shard layout.  The headline ``speedup`` is
``sequential_seconds / sweep_seconds``; the acceptance target is >= 1.5.
Per-scenario bit-identity between the two paths is asserted, not timed.

Emits ``BENCH_scenarios.json`` (``benchmarks/check_trend.py`` gates every
``speedup`` entry in CI).

Run standalone (``python benchmarks/bench_scenarios.py``) or under
pytest-benchmark (``pytest benchmarks/bench_scenarios.py``).
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

from _bench_util import time_best, write_payload
from repro.core import (SMCConfig, SequentialCalibrator, WindowSchedule,
                        paper_first_window_prior, paper_observation_model,
                        paper_window_jitter)
from repro.core.scenarios import ScenarioSweep, scenario_set
from repro.data import PiecewiseConstant
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth
from repro.testing import assert_runs_identical

DEFAULT_BREAKS = (20, 34, 48, 62)  # paper-style; overrides land at 34/48
DEFAULT_DRAWS = 400
DEFAULT_REPLICATES = 5  # 400 x 5 = 2,000 particles per proposal window
DEFAULT_RESAMPLE = 400
DEFAULT_SHARDS = 4
ENGINE = "binomial_leap_batched"
TARGET = {"min_speedup": 1.5}


def _config(draws: int, replicates: int, resample: int, n_shards: int,
            base_seed: int) -> SMCConfig:
    return SMCConfig(n_parameter_draws=draws, n_replicates=replicates,
                     resample_size=resample, base_seed=base_seed,
                     engine=ENGINE, n_shards=n_shards)


def _calibrator(truth, scenario, config: SMCConfig,
                breaks: tuple[int, ...]) -> SequentialCalibrator:
    return SequentialCalibrator(
        base_params=truth.params, prior=paper_first_window_prior(),
        jitter=paper_window_jitter(),
        observation_model=paper_observation_model(),
        schedule=WindowSchedule.from_breaks(list(breaks)),
        config=config, scenario=scenario)


def run_scenarios_bench(draws: int = DEFAULT_DRAWS,
                        replicates: int = DEFAULT_REPLICATES,
                        resample: int = DEFAULT_RESAMPLE,
                        n_shards: int = DEFAULT_SHARDS,
                        breaks: tuple[int, ...] = DEFAULT_BREAKS,
                        repeats: int = 1, seed: int = 20240215,
                        population: int = 500_000) -> dict:
    """Time the 4-scenario sweep against 4 standalone calibrations."""
    specs = scenario_set("default")
    params = DiseaseParameters(population=population,
                               initial_exposed=max(1, population // 5000))
    truth = make_ground_truth(params=params, horizon=breaks[-1], seed=seed,
                              theta_schedule=PiecewiseConstant.constant(0.30),
                              rho_schedule=PiecewiseConstant.constant(0.7))
    observations = truth.observations(include_deaths=True)
    config = _config(draws, replicates, resample, n_shards, base_seed=17)

    def sequential() -> dict:
        return {spec.name: _calibrator(truth, spec, config, breaks)
                .run(observations) for spec in specs}

    def swept() -> tuple[ScenarioSweep, dict]:
        sweep = ScenarioSweep(
            base_params=truth.params, prior=paper_first_window_prior(),
            jitter=paper_window_jitter(),
            observation_model=paper_observation_model(),
            schedule=WindowSchedule.from_breaks(list(breaks)),
            scenarios=specs, config=config)
        return sweep, sweep.run(observations)

    seq_s, seq_results = time_best(sequential, repeats)
    sweep_s, (sweep, sweep_results) = time_best(swept, repeats)

    # The speedup only counts if the sweep changed nothing: every scenario
    # must be bit-identical to its standalone calibration.
    for name in sweep.names:
        assert_runs_identical(seq_results[name], sweep_results[name],
                              f"scenario {name!r}")

    n_windows = len(list(sweep.schedule))
    return {
        "benchmark": "scenario_sweep",
        "n_scenarios": len(specs),
        "scenarios": sweep.names,
        "n_particles": draws * replicates,
        "n_windows": n_windows,
        "resample_size": resample,
        "breaks": list(breaks),
        "n_shards": n_shards,
        "population": population,
        "repeats": repeats,
        "cpu_count": os.cpu_count() or 1,
        "target": dict(TARGET),
        "sweep": {
            "sequential_seconds": seq_s,
            "sweep_seconds": sweep_s,
            "speedup": seq_s / sweep_s,
            "sequential_windows": len(specs) * n_windows,
            "computed_windows": sweep.computed_windows,
            "reused_windows": sweep.reused_windows,
            "bit_identical": True,
        },
    }


def test_scenario_sweep_speedup(benchmark, output_dir):
    """pytest-benchmark entry point (CI smoke scale)."""
    from _bench_util import once

    # The built-in override days (34/48) must sit on continuation window
    # starts, so smoke scale shrinks the ensemble, not the schedule.
    payload = once(benchmark, lambda: run_scenarios_bench(
        draws=30, replicates=2, resample=40, n_shards=3,
        population=50_000))
    write_payload(payload, output_dir / "BENCH_scenarios.json")
    print("\nScenarios bench:", json.dumps(payload, indent=2))
    assert payload["sweep"]["bit_identical"]
    assert payload["sweep"]["reused_windows"] > 0
    # Smoke floor is looser than the committed-result target: CI runners
    # are noisy and the trend gate judges the committed baseline instead.
    assert payload["sweep"]["speedup"] > 1.1


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--draws", type=int, default=DEFAULT_DRAWS)
    parser.add_argument("--replicates", type=int, default=DEFAULT_REPLICATES)
    parser.add_argument("--resample", type=int, default=DEFAULT_RESAMPLE)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--breaks", type=int, nargs="+",
                        default=list(DEFAULT_BREAKS))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=20240215)
    parser.add_argument("--population", type=int, default=500_000)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_scenarios.json"))
    args = parser.parse_args(argv)
    payload = run_scenarios_bench(args.draws, args.replicates, args.resample,
                                  args.shards, tuple(args.breaks),
                                  args.repeats, args.seed, args.population)
    write_payload(payload, args.output)
    sw = payload["sweep"]
    print(f"{payload['n_scenarios']} scenarios x {payload['n_windows']} "
          f"windows, "
          f"{payload['n_particles']} particles: sequential "
          f"{sw['sequential_seconds']:.3f}s ({sw['sequential_windows']} "
          f"windows) | sweep {sw['sweep_seconds']:.3f}s "
          f"({sw['computed_windows']} computed + {sw['reused_windows']} "
          f"reused) | speedup {sw['speedup']:.3f}x")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
