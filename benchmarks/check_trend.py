"""Benchmark trend check: fail loudly when a batched-path speedup regresses.

Compares every ``speedup`` ratio in a freshly generated benchmark JSON
(e.g. the CI smoke runs of ``bench_weighting.py`` / ``bench_simulation.py``)
against the committed baseline payload at the same JSON path.  Because CI
machines are slower and noisier than the box that produced the baseline,
the check is a *ratio* guard, not an absolute one: a fresh speedup must
reach at least ``--min-fraction`` of its baseline value and never fall
below the absolute ``--floor``.  A batched path collapsing to scalar speed
(ratio ~1) trips both.

Usage::

    python benchmarks/check_trend.py \
        --baseline BENCH_weighting.json --fresh BENCH_weighting_smoke.json
    python benchmarks/check_trend.py \
        --baseline BENCH_simulation.json --fresh BENCH_simulation_smoke.json

Exits non-zero (and prints the offending paths) on any regression, which is
what makes the CI step fail loudly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_MIN_FRACTION = 0.25
DEFAULT_FLOOR = 1.5


def extract_speedups(payload: dict, prefix: str = "") -> dict[str, float]:
    """Map of ``dotted.json.path -> value`` for every ``speedup`` key."""
    out: dict[str, float] = {}
    for key, value in payload.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if key == "speedup" and isinstance(value, (int, float)):
            out[prefix or "(top-level)"] = float(value)
        elif isinstance(value, dict):
            out.update(extract_speedups(value, path))
    return out


def cpu_mismatch(baseline: dict, fresh: dict) -> tuple[int, int] | None:
    """``(baseline_cpus, fresh_cpus)`` when the two differ, else ``None``.

    Multi-core speedups (e.g. the sharded-dispatch entries) are only
    comparable between hosts with similar parallelism: a baseline produced
    on a 1-core container sits near 1x, so comparing it against a 4-core CI
    run silently turns the ratio guard into a no-op (and the reverse makes
    it impossibly strict).  Only payloads that record ``cpu_count`` (e.g.
    ``bench_sharding.py``) participate.
    """
    base_cpu = baseline.get("cpu_count")
    fresh_cpu = fresh.get("cpu_count")
    if base_cpu is None or fresh_cpu is None or base_cpu == fresh_cpu:
        return None
    return int(base_cpu), int(fresh_cpu)


def render_cpu_mismatch(mismatch: tuple[int, int]) -> str:
    """One machine-readable line: ``CPU_MISMATCH baseline=N fresh=M``.

    The fixed leading token lets CI logs (and the workflow itself) grep
    for the condition instead of pattern-matching free text; the prose
    after it is for humans.
    """
    base_cpu, fresh_cpu = mismatch
    return (f"CPU_MISMATCH baseline={base_cpu} fresh={fresh_cpu} "
            "multi-core speedup entries are not comparable across this "
            "gap; regenerate the committed baseline on matching hardware")


def check_trend(baseline: dict, fresh: dict, min_fraction: float,
                floor: float, strict_cpu: bool = False) -> list[str]:
    """Return a list of human-readable failures (empty = pass).

    With ``strict_cpu`` a recorded ``cpu_count`` mismatch is itself a
    failure (the ratio guard is meaningless across it); by default it is
    only warned about and the comparison still runs.
    """
    mismatch = cpu_mismatch(baseline, fresh)
    if mismatch is not None:
        line = render_cpu_mismatch(mismatch)
        print(f"  WARNING: {line}", file=sys.stderr)
        if strict_cpu:
            return [line]
    base_speedups = extract_speedups(baseline)
    fresh_speedups = extract_speedups(fresh)
    if not fresh_speedups:
        return ["fresh payload contains no 'speedup' entries"]
    failures: list[str] = []
    compared = 0
    for path, fresh_value in sorted(fresh_speedups.items()):
        base_value = base_speedups.get(path)
        if base_value is None:
            print(f"  [skip] {path}: no baseline entry "
                  f"(fresh {fresh_value:.2f}x)")
            continue
        compared += 1
        threshold = max(floor, min_fraction * base_value)
        status = "ok" if fresh_value >= threshold else "FAIL"
        print(f"  [{status:>4}] {path}: fresh {fresh_value:.2f}x vs "
              f"baseline {base_value:.2f}x (threshold {threshold:.2f}x)")
        if fresh_value < threshold:
            failures.append(
                f"{path}: speedup {fresh_value:.2f}x below threshold "
                f"{threshold:.2f}x (baseline {base_value:.2f}x)")
    if compared == 0:
        failures.append(
            "no comparable 'speedup' paths between baseline and fresh "
            "payloads — smoke run and baseline have diverged in shape")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed benchmark JSON (the trend anchor)")
    parser.add_argument("--fresh", type=Path, required=True,
                        help="freshly generated benchmark JSON to check")
    parser.add_argument("--min-fraction", type=float,
                        default=DEFAULT_MIN_FRACTION,
                        help="fresh speedup must reach this fraction of the "
                             "baseline value (machine-noise allowance)")
    parser.add_argument("--floor", type=float, default=DEFAULT_FLOOR,
                        help="absolute minimum acceptable speedup")
    parser.add_argument("--strict-cpu", action="store_true",
                        help="exit non-zero (status 3) on a recorded "
                             "cpu_count mismatch instead of just warning")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    print(f"trend check: {args.fresh} vs baseline {args.baseline}")
    if args.strict_cpu:
        mismatch = cpu_mismatch(baseline, fresh)
        if mismatch is not None:
            print(f"  {render_cpu_mismatch(mismatch)}", file=sys.stderr)
            print("\nCPU MISMATCH (strict mode): baselines must be "
                  "regenerated on matching hardware", file=sys.stderr)
            return 3
    failures = check_trend(baseline, fresh, args.min_fraction, args.floor)
    if failures:
        print("\nBENCHMARK REGRESSION DETECTED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("trend check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
