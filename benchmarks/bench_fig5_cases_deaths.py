"""Figure 5 — sequential calibration to case counts AND deaths.

The Fig 4 experiment re-run with the death stream added as a second,
unbiased data source (Gaussian on square-root counts, no reporting bias —
section V-C).  The paper's claims:

* posterior prediction now covers reported cases, actual cases, and deaths;
* "there is a reduction in uncertainty regarding reported case predictions"
  and the joint (theta, rho) posterior concentrates further.

This bench reuses the Fig 4 configuration so the only difference is the
extra stream, writes the same outputs plus the death ribbon, and asserts the
uncertainty-reduction claim against the Fig 4 summary (when present).
"""

from __future__ import annotations

import json

import numpy as np

from _bench_util import once
from bench_fig4_sequential_cases import (export_joint_densities,
                                         sequential_config,
                                         stitched_window_coverage,
                                         truth_cell_mass,
                                         window_summaries,
                                         windowed_reported_ribbons)
from repro.core import trajectory_ribbon
from repro.inference import calibrate
from repro.viz import write_json, write_ribbon_csv


def test_fig5_sequential_cases_and_deaths(benchmark, scale, output_dir,
                                          executor, paper_truth):
    cfg = sequential_config(scale, base_seed=202)
    result = once(benchmark, lambda: calibrate(
        paper_truth.observations(include_deaths=True), cfg,
        executor=executor))

    rows = window_summaries(result, paper_truth)
    write_json(output_dir / "fig5_summary.json", {
        "rows": rows, "wall_time_seconds": result.wall_time_seconds,
        "log_evidence": result.log_evidence()})
    print("\nFig 5 window rows:")
    for r in rows:
        print(f"  {r['window']}: theta {r['theta_mean']:.3f} "
              f"(truth {r['theta_truth']:.2f}) rho {r['rho_mean']:.3f} "
              f"(truth {r['rho_truth']:.2f}) ESS% "
              f"{100 * r['ess_fraction']:.1f}")

    # Fig 5a ribbons: reported cases (per window), true cases, deaths.
    ribbons = windowed_reported_ribbons(result)
    for (window, rib) in ribbons:
        write_ribbon_csv(
            output_dir / f"fig5_reported_cases_ribbon_w{window.start_day}.csv",
            rib, truth=paper_truth.observed_cases.window(window.start_day,
                                                         window.end_day))
    true_rib = result.posterior_ribbon("cases")
    write_ribbon_csv(output_dir / "fig5_true_cases_ribbon.csv", true_rib,
                     truth=paper_truth.true_cases.window(0, 76))
    deaths_rib = result.posterior_ribbon("deaths")
    write_ribbon_csv(output_dir / "fig5_deaths_ribbon.csv", deaths_rib,
                     truth=paper_truth.deaths.window(0, 76))
    grids = export_joint_densities(result, output_dir, "fig5")

    # --- shape assertions --------------------------------------------------
    theta_means = [r["theta_mean"] for r in rows]
    assert theta_means[3] > theta_means[2] + 0.02  # tracks the 0.40 jump
    # Death ribbons cover the observed deaths window by window (each window
    # scored by its own posterior, as the paper's deaths panel shows).
    # Deaths are tiny integer counts (0-14), so allow +-1 count of
    # discreteness slack around the band.
    death_coverages = []
    for wr in result.windows:
        rib = trajectory_ribbon(wr.posterior.trajectories("segment"),
                                "deaths")
        truth_vals = paper_truth.deaths.window(
            wr.window.start_day, wr.window.end_day).values
        lo = rib.band(0.05) - 1.0
        hi = rib.band(0.95) + 1.0
        death_coverages.append(
            float(((truth_vals >= lo) & (truth_vals <= hi)).mean()))
    print(f"  death-ribbon coverage per window (+-1 count): "
          f"{[round(c, 2) for c in death_coverages]}")
    assert float(np.mean(death_coverages)) > 0.5
    # Reported-case ribbons still track observations window by window.
    coverage, per_window = stitched_window_coverage(
        ribbons, paper_truth.observed_cases)
    print(f"  reported-ribbon coverage per window: "
          f"{[round(c, 2) for c in per_window]}")
    assert coverage > 0.5, per_window
    # Truth square inside the joint support each window.
    for i, r in enumerate(rows):
        assert truth_cell_mass(grids, i, r["theta_truth"],
                               r["rho_truth"]) <= 1.0

    # --- Fig 4 vs Fig 5: uncertainty reduction -----------------------------
    fig4_path = output_dir / "fig4_summary.json"
    if fig4_path.exists():
        fig4_rows = json.loads(fig4_path.read_text())["rows"]
        w4 = np.array([r["theta_ci90"][1] - r["theta_ci90"][0]
                       for r in fig4_rows])
        w5 = np.array([r["theta_ci90"][1] - r["theta_ci90"][0] for r in rows])
        mean4, mean5 = float(w4.mean()), float(w5.mean())
        write_json(output_dir / "fig5_vs_fig4_uncertainty.json", {
            "theta_ci90_mean_width_cases_only": mean4,
            "theta_ci90_mean_width_with_deaths": mean5,
            "reduction_fraction": 1.0 - mean5 / mean4 if mean4 > 0 else 0.0,
        })
        print(f"  theta CI90 width: cases-only {mean4:.3f} vs "
              f"with-deaths {mean5:.3f}")
        # The paper reports reduced uncertainty; at laptop scale we require
        # the with-deaths run to be no wider on average (and typically
        # tighter).
        assert mean5 <= mean4 * 1.15
