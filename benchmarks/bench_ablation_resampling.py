"""Resampling ablation — multinomial (the paper's choice) vs alternatives.

DESIGN.md design choice: the paper resamples multinomially (Algorithm 1).
Classical results say systematic/stratified/residual resampling add less
Monte-Carlo variance.  This bench quantifies the gap on weight profiles
representative of the calibration (peaked likelihoods, sqrt-count Gaussian)
and on a real first-window posterior.
"""

from __future__ import annotations

import numpy as np

from _bench_util import once
from repro.core import RESAMPLERS
from repro.viz import write_json

N_TRIALS = 400
N_PARTICLES = 500
N_OUT = 500


def _weight_profile(kind: str, rng) -> np.ndarray:
    if kind == "uniform":
        return np.full(N_PARTICLES, 1.0 / N_PARTICLES)
    if kind == "peaked":
        lw = -0.5 * np.linspace(0, 8, N_PARTICLES) ** 2
        w = np.exp(lw - lw.max())
        return w / w.sum()
    if kind == "degenerate-tail":
        w = rng.lognormal(0.0, 3.0, size=N_PARTICLES)
        return w / w.sum()
    raise ValueError(kind)


def _selection_variance(resampler, weights) -> float:
    counts = np.zeros((N_TRIALS, len(weights)))
    for t in range(N_TRIALS):
        rng = np.random.Generator(np.random.PCG64(t))
        idx = resampler(weights, N_OUT, rng)
        counts[t] = np.bincount(idx, minlength=len(weights))
    return float(counts.var(axis=0).sum())


def test_resampling_variance(benchmark, output_dir):
    rng = np.random.Generator(np.random.PCG64(77))
    profiles = {k: _weight_profile(k, rng)
                for k in ("uniform", "peaked", "degenerate-tail")}

    def run():
        table = {}
        for profile_name, w in profiles.items():
            table[profile_name] = {
                name: _selection_variance(fn, w)
                for name, fn in RESAMPLERS.items()}
        return table

    table = once(benchmark, run)
    write_json(output_dir / "ablation_resampling.json", table)
    print("\nresampling selection variance (lower = better):")
    for profile_name, row in table.items():
        ordered = sorted(row.items(), key=lambda kv: kv[1])
        pretty = ", ".join(f"{k}={v:.1f}" for k, v in ordered)
        print(f"  {profile_name}: {pretty}")

    for profile_name, row in table.items():
        # The paper's multinomial scheme is always the highest-variance one.
        assert row["multinomial"] >= row["systematic"] - 1e-9, profile_name
        assert row["multinomial"] >= row["residual"] - 1e-9, profile_name
        # Low-variance schemes beat it decisively on non-uniform weights.
        if profile_name != "uniform":
            assert row["systematic"] < 0.8 * row["multinomial"], profile_name
