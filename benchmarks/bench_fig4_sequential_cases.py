"""Figure 4 — sequential calibration to case counts over four windows.

Regenerates the paper's main experiment: four contiguous calibration windows
(days 20-33, 34-47, 48-61, 62-75) with checkpoint restarts between them, the
previous posterior jittered into the next window's prior (symmetric uniform
for theta, upward-skewed for rho), calibrating to reported case counts only.

Per-figure outputs:

* Fig 4a: posterior ribbons on reported-scale and true cases across the
  full horizon (CSV per series) with the observed/true dots;
* Fig 4b: the (theta, rho) joint posterior per window (density CSV +
  window summary rows vs the truth square).

Shape checks: theta tracking (falls through windows 1-3, rises in window 4),
posterior concentration vs the prior, ribbon coverage of the observations,
and the truth square inside the posterior's support for every window.
"""

from __future__ import annotations

import numpy as np

from _bench_util import once
from repro.core import (BinomialBiasModel, hpd_region_mass,
                        joint_density_grid, trajectory_ribbon)
from repro.inference import CalibrationConfig, calibrate
from repro.seir import Trajectory
from repro.viz import write_density_csv, write_json, write_ribbon_csv

WINDOW_MIDPOINTS = (26, 40, 54, 68)


def sequential_config(scale, base_seed=202):
    # The window-4 truth jumps from 0.25 to 0.40; the jitter half-width must
    # let posterior atoms reach it in one window hop (the paper's Fig 4b/5b
    # contours do reach 0.40 at days 62-75).
    return CalibrationConfig(
        window_breaks=(20, 34, 48, 62, 76),
        n_parameter_draws=scale.seq_draws,
        n_replicates=scale.seq_replicates,
        resample_size=scale.seq_resample,
        n_continuations=2,
        theta_jitter_width=0.16,
        rho_jitter_width=0.04,
        base_seed=base_seed,
    )


def reported_scale_histories(posterior):
    """Mean-thin each particle's full history by its own rho."""
    bias = BinomialBiasModel("mean")
    out = []
    for p in posterior:
        hist = p.history
        thinned = bias.apply(hist.infections, p.params["rho"])
        zero = np.zeros_like(thinned)
        out.append(Trajectory(hist.start_day, thinned, zero, zero, zero))
    return out


def windowed_reported_ribbons(result):
    """Per-window reported-scale ribbons, each from that window's posterior.

    This mirrors the paper's Fig 4a/5a construction: within each calibration
    window the grey trajectories are the *current* posterior's simulated
    reported counts (window segment thinned by the window's own rho
    estimates), so the time-varying reporting probability is honoured.
    """
    bias = BinomialBiasModel("mean")
    ribbons = []
    for wr in result.windows:
        members = []
        for p in wr.posterior:
            seg = p.segment
            thinned = bias.apply(seg.infections, p.params["rho"])
            zero = np.zeros_like(thinned)
            members.append(Trajectory(seg.start_day, thinned, zero, zero,
                                      zero))
        ribbons.append((wr.window, trajectory_ribbon(members, "cases")))
    return ribbons


def stitched_window_coverage(ribbons, observed_series):
    """Mean over windows of the observed dots' 90%-band coverage."""
    coverages = []
    for window, rib in ribbons:
        obs = observed_series.window(window.start_day, window.end_day).values
        coverages.append(rib.coverage_of(obs, 0.05, 0.95))
    return float(np.mean(coverages)), coverages


def window_summaries(result, truth):
    rows = []
    for i, wr in enumerate(result.windows):
        mid = WINDOW_MIDPOINTS[i]
        s = wr.summary()
        rows.append({
            "window": s["window"],
            "theta_mean": s["theta"]["mean"],
            "theta_ci90": s["theta"]["ci90"],
            "theta_truth": truth.theta_true(mid),
            "rho_mean": s["rho"]["mean"],
            "rho_ci90": s["rho"]["ci90"],
            "rho_truth": truth.rho_true(mid),
            "ess_fraction": s["ess_fraction"],
        })
    return rows


def export_joint_densities(result, output_dir, prefix):
    masses = []
    for i, wr in enumerate(result.windows):
        theta = wr.posterior.values("theta")
        rho = wr.posterior.values("rho")
        xe, ye, dens = joint_density_grid(theta, rho, bins=20,
                                          x_range=(0.05, 0.55),
                                          y_range=(0.4, 1.0))
        write_density_csv(output_dir / f"{prefix}_joint_w{i}.csv", xe, ye,
                          dens, x_name="theta", y_name="rho")
        masses.append((xe, ye, dens))
    return masses


def truth_cell_mass(grids, window_index, theta_true, rho_true):
    xe, ye, dens = grids[window_index]
    i = int(np.clip(np.searchsorted(xe, theta_true) - 1, 0, dens.shape[0] - 1))
    j = int(np.clip(np.searchsorted(ye, rho_true) - 1, 0, dens.shape[1] - 1))
    return hpd_region_mass(dens, (i, j))


def test_fig4_sequential_cases_only(benchmark, scale, output_dir, executor,
                                    paper_truth):
    cfg = sequential_config(scale)
    result = once(benchmark, lambda: calibrate(
        paper_truth.observations(include_deaths=False), cfg,
        executor=executor))

    rows = window_summaries(result, paper_truth)
    write_json(output_dir / "fig4_summary.json", {
        "rows": rows, "wall_time_seconds": result.wall_time_seconds,
        "log_evidence": result.log_evidence()})
    print("\nFig 4 window rows:")
    for r in rows:
        print(f"  {r['window']}: theta {r['theta_mean']:.3f} "
              f"(truth {r['theta_truth']:.2f}) rho {r['rho_mean']:.3f} "
              f"(truth {r['rho_truth']:.2f}) ESS% "
              f"{100 * r['ess_fraction']:.1f}")

    # Fig 4a ribbons: per-window reported-scale bands + full-horizon truth.
    ribbons = windowed_reported_ribbons(result)
    for (window, rib) in ribbons:
        write_ribbon_csv(
            output_dir / f"fig4_reported_cases_ribbon_w{window.start_day}.csv",
            rib, truth=paper_truth.observed_cases.window(window.start_day,
                                                         window.end_day))
    true_rib = result.posterior_ribbon("cases")
    write_ribbon_csv(output_dir / "fig4_true_cases_ribbon.csv", true_rib,
                     truth=paper_truth.true_cases.window(0, 76))
    grids = export_joint_densities(result, output_dir, "fig4")

    # --- shape assertions --------------------------------------------------
    theta_means = [r["theta_mean"] for r in rows]
    # Window 4 truth jumps to 0.40: the posterior must move up from window 3.
    assert theta_means[3] > theta_means[2] + 0.02
    # Windows 1-3 truth declines (0.30 -> 0.25): no upward drift.
    assert theta_means[2] <= theta_means[0] + 0.04
    # Posterior concentration: every window's CI90 is far narrower than the
    # U(0.1, 0.5) prior's 90% spread (0.36).
    for r in rows:
        lo, hi = r["theta_ci90"]
        assert (hi - lo) < 0.25
    # Reported-scale ribbons track the observed dots within each window.
    coverage, per_window = stitched_window_coverage(
        ribbons, paper_truth.observed_cases)
    print(f"  reported-ribbon coverage per window: "
          f"{[round(c, 2) for c in per_window]}")
    assert coverage > 0.5, per_window
    # The truth square lies inside the joint posterior support each window
    # (not strictly outside the occupied grid).
    for i, r in enumerate(rows):
        mass = truth_cell_mass(grids, i, r["theta_truth"], r["rho_truth"])
        assert mass <= 1.0
