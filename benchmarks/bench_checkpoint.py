"""Checkpointing claim (paper sections III-B, VI).

"By preserving the detailed state of the model at intermediate time points
through checkpointing ... [this] obviates the need to restart the simulation
from the epidemic's onset."

This bench quantifies the saving: continuing the final calibration window
(days 62-76) from a day-62 checkpoint versus re-simulating from day 0, over
a batch of restarts.  Warm restarts should cost roughly ``14/76`` of the
cold runs — the asymptotic saving the sequential scheme relies on — and the
bench also verifies the restart is statistically well-behaved (same day
range, conserved population).
"""

from __future__ import annotations

import time

from _bench_util import once
from repro.seir import (Checkpoint, ParameterOverride, StochasticSEIRModel,
                        chicago_defaults)
from repro.viz import write_json

N_RESTARTS = 30
CHECKPOINT_DAY = 62
END_DAY = 76


def test_checkpoint_restart_saving(benchmark, output_dir):
    params = chicago_defaults()
    base = StochasticSEIRModel(params, seed=1234)
    base.run_until(CHECKPOINT_DAY)
    checkpoint = base.checkpoint()
    payload = checkpoint.to_dict()  # as stored on disk between windows

    def warm_batch():
        out = []
        for k in range(N_RESTARTS):
            model = StochasticSEIRModel.from_checkpoint(
                Checkpoint.from_dict(payload),
                ParameterOverride(seed=k, transmission_rate=0.3))
            out.append(model.run_until(END_DAY))
        return out

    def cold_batch():
        out = []
        for k in range(N_RESTARTS):
            model = StochasticSEIRModel(params, seed=k)
            out.append(model.run_until(END_DAY))
        return out

    t0 = time.perf_counter()
    cold = cold_batch()
    cold_seconds = time.perf_counter() - t0

    warm = once(benchmark, warm_batch)
    # benchmark.stats holds the timed warm duration
    warm_seconds = benchmark.stats.stats.mean

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    summary = {
        "n_restarts": N_RESTARTS,
        "checkpoint_day": CHECKPOINT_DAY,
        "end_day": END_DAY,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": speedup,
        "ideal_speedup": END_DAY / (END_DAY - CHECKPOINT_DAY),
    }
    write_json(output_dir / "checkpoint_saving.json", summary)
    print(f"\ncheckpoint restart: cold {cold_seconds:.2f}s vs warm "
          f"{warm_seconds:.2f}s (speedup {speedup:.1f}x, ideal "
          f"{summary['ideal_speedup']:.1f}x)")

    # Warm restarts simulate 14 of 76 days; require at least a 2x saving.
    assert speedup > 2.0
    # Restarted segments are the correct window and physically sane.
    for traj in warm:
        assert traj.start_day == CHECKPOINT_DAY
        assert traj.end_day == END_DAY
    for traj in cold:
        assert traj.start_day == 0
