"""Overhead benchmark of the fault-tolerant dispatch path.

Two claims of the fault-tolerance PR are measured here:

* **Zero-fault overhead** — one calibration window (2,000 particles x 14
  days by default) advanced through ``simulate_groups`` on the legacy
  strict path (``retry=None``, plain ``executor.map``) vs the
  fault-tolerant path (a :class:`~repro.hpc.faults.RetryPolicy`, per-shard
  ``map_each`` dispatch plus result validation) with **no faults
  injected**.  The headline ``speedup`` is ``plain_seconds /
  fault_tolerant_seconds``; the acceptance target is >= 0.95 (< 5%
  overhead).  Both paths must also produce bit-identical ensembles —
  asserted, not timed.
* **Recovery cost** — the same window under a scripted
  :class:`~repro.hpc.faults.ChaosExecutor` crash-and-retry plan, reporting
  the wall-clock cost of re-executing failed shards (informational: no
  ``speedup`` key, so trend gating ignores it).

Emits ``BENCH_faults.json`` (``benchmarks/check_trend.py`` gates every
``speedup`` entry in CI).

Run standalone (``python benchmarks/bench_faults.py``) or under
pytest-benchmark (``pytest benchmarks/bench_faults.py``).
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import numpy as np

from _bench_util import time_best, write_payload
from repro.hpc import (ChaosExecutor, Fault, FaultPlan, GroupSpec,
                       RetryPolicy, SerialExecutor, simulate_groups)
from repro.seir import DiseaseParameters

DEFAULT_SIZE = 2_000
DEFAULT_DAYS = 14
DEFAULT_SHARDS = 4
STEPS_PER_DAY = 4
ENGINE = "binomial_leap_batched"
TARGET = {"min_speedup": 0.95}  # < 5% zero-fault overhead


def _seeds_and_thetas(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.Generator(np.random.PCG64(seed))
    seeds = rng.integers(0, 2**40, size=n, dtype=np.int64)
    thetas = rng.uniform(0.1, 0.5, size=n)
    return seeds, thetas


def run_window(executor, params: DiseaseParameters, seeds: np.ndarray,
               thetas: np.ndarray, n_days: int, n_shards: int,
               retry: RetryPolicy | None) -> np.ndarray:
    """One sharded window simulation; returns per-particle infection totals."""
    spec = GroupSpec(params=params, seeds=seeds, thetas=thetas, start_day=0)
    [group] = simulate_groups(
        executor, [spec], end_day=n_days, engine=ENGINE,
        engine_options={"steps_per_day": STEPS_PER_DAY}, n_shards=n_shards,
        retry=retry)
    return np.concatenate([r.batch.infections.sum(axis=1)
                           for r in group.results])


def run_faults_bench(n_particles: int = DEFAULT_SIZE,
                     n_days: int = DEFAULT_DAYS,
                     n_shards: int = DEFAULT_SHARDS,
                     repeats: int = 5, seed: int = 20240215,
                     population: int = 2_700_000) -> dict:
    """Time plain vs fault-tolerant dispatch on a zero-fault run."""
    params = DiseaseParameters(population=population,
                               initial_exposed=max(1, population // 5400))
    seeds, thetas = _seeds_and_thetas(n_particles, seed)
    executor = SerialExecutor()
    retry = RetryPolicy(max_attempts=3)

    plain_s, plain_totals = time_best(
        lambda: run_window(executor, params, seeds, thetas, n_days,
                           n_shards, None), repeats)
    ft_s, ft_totals = time_best(
        lambda: run_window(executor, params, seeds, thetas, n_days,
                           n_shards, retry), repeats)
    if not np.array_equal(plain_totals, ft_totals):
        raise AssertionError(
            "fault-tolerant dispatch changed the simulated ensemble")

    # Recovery cost: every shard's first attempt crashes, retries succeed.
    plan = FaultPlan.scripted(*[Fault(kind="crash", shard=s, attempt=1)
                                for s in range(n_shards)])
    chaos = ChaosExecutor(executor, plan)
    failures: list = []

    def chaotic() -> np.ndarray:
        chaos.reset()
        failures.clear()
        return run_window(chaos, params, seeds, thetas, n_days, n_shards,
                          retry)

    chaos_s, chaos_totals = time_best(chaotic, 1)
    if not np.array_equal(plain_totals, chaos_totals):
        raise AssertionError("retried chaos run diverged from the plain run")

    return {
        "benchmark": "fault_tolerant_dispatch",
        "n_particles": n_particles,
        "n_days": n_days,
        "n_shards": n_shards,
        "steps_per_day": STEPS_PER_DAY,
        "population": params.population,
        "repeats": repeats,
        "cpu_count": os.cpu_count() or 1,
        "target": dict(TARGET),
        "zero_fault": {
            "plain_seconds": plain_s,
            "fault_tolerant_seconds": ft_s,
            "speedup": plain_s / ft_s,
            "overhead_percent": 100.0 * (ft_s / plain_s - 1.0),
            "bit_identical": True,
        },
        "recovery": {
            "crashed_shards": n_shards,
            "seconds": chaos_s,
            "seconds_over_plain": chaos_s - plain_s,
            "bit_identical": True,
        },
    }


def test_fault_overhead(benchmark, output_dir):
    """pytest-benchmark entry point (CI smoke scale)."""
    from _bench_util import once

    payload = once(benchmark, lambda: run_faults_bench(
        n_particles=500, repeats=2, population=500_000))
    write_payload(payload, output_dir / "BENCH_faults.json")
    print("\nFaults bench:", json.dumps(payload, indent=2))
    assert payload["zero_fault"]["bit_identical"]
    assert payload["recovery"]["bit_identical"]
    # Smoke floor is looser than the committed-result target: CI runners
    # are noisy and the trend gate judges the committed baseline instead.
    assert payload["zero_fault"]["speedup"] > 0.75


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--particles", type=int, default=DEFAULT_SIZE)
    parser.add_argument("--n-days", type=int, default=DEFAULT_DAYS)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=20240215)
    parser.add_argument("--population", type=int, default=2_700_000)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_faults.json"))
    args = parser.parse_args(argv)
    payload = run_faults_bench(args.particles, args.n_days, args.shards,
                               args.repeats, args.seed, args.population)
    write_payload(payload, args.output)
    zf = payload["zero_fault"]
    print(f"{args.particles} particles x {args.n_days}d, "
          f"{args.shards} shards: plain {zf['plain_seconds']:.3f}s | "
          f"fault-tolerant {zf['fault_tolerant_seconds']:.3f}s | "
          f"overhead {zf['overhead_percent']:.1f}% "
          f"(speedup {zf['speedup']:.3f}x)")
    rec = payload["recovery"]
    print(f"recovery: {rec['crashed_shards']} crashed shards re-executed in "
          f"{rec['seconds']:.3f}s (+{rec['seconds_over_plain']:.3f}s over "
          f"plain)")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
