"""Sequential-vs-single-shot ablation (the paper's core motivation).

Section IV-C argues for calibrating window by window: a single constant
parameter cannot track a time-varying epidemic, so one-shot importance
sampling over the full horizon degenerates.  This bench runs both schemes at
a matched simulation budget on a truth whose theta drops mid-horizon and
compares (a) ESS fractions and (b) tracking error of the theta estimate.

Town-scale population keeps the budget small; the contrast is structural,
not scale-dependent.
"""

from __future__ import annotations

import numpy as np

from _bench_util import once
from repro.baselines import single_shot_importance_sampling
from repro.core import paper_first_window_prior, paper_observation_model
from repro.data import PiecewiseConstant
from repro.inference import CalibrationConfig, calibrate
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth
from repro.viz import write_json

PARAMS = DiseaseParameters(population=80_000, initial_exposed=160)
THETA_SCHEDULE = PiecewiseConstant(breakpoints=(22,), values=(0.34, 0.20))
RHO_SCHEDULE = PiecewiseConstant.constant(0.7)
HORIZON = 34
WINDOWS = (10, 22, 34)


def test_sequential_vs_single_shot(benchmark, output_dir, executor):
    truth = make_ground_truth(params=PARAMS, horizon=HORIZON, seed=404,
                              theta_schedule=THETA_SCHEDULE,
                              rho_schedule=RHO_SCHEDULE)

    # Matched budgets: sequential spends draws*reps (w1) + resample (w2);
    # single-shot spends the same total on full-horizon runs.  Full-horizon
    # runs are ~HORIZON/window-length times longer, so the single-shot run
    # gets the same *trajectory-day* budget, which favours it if anything.
    n_draws, n_reps, resample = 150, 3, 200

    def run_sequential():
        cfg = CalibrationConfig(
            window_breaks=list(WINDOWS), n_parameter_draws=n_draws,
            n_replicates=n_reps, resample_size=resample, base_seed=31,
            theta_jitter_width=0.08)
        return calibrate(truth.observations(), cfg, base_params=PARAMS,
                         executor=executor)

    def run_single_shot():
        return single_shot_importance_sampling(
            truth.observations(), PARAMS, paper_first_window_prior(),
            paper_observation_model(), start_day=WINDOWS[0],
            end_day=WINDOWS[-1], n_parameter_draws=n_draws,
            n_replicates=n_reps, resample_size=resample, base_seed=31,
            executor=executor)

    seq = once(benchmark, run_sequential)
    single = run_single_shot()

    seq_track = seq.parameter_track("theta")
    seq_err = float(np.mean([
        abs(seq_track.means[0] - THETA_SCHEDULE(15)),
        abs(seq_track.means[1] - THETA_SCHEDULE(28)),
    ]))
    single_theta = single.posterior.weighted_mean("theta")
    single_err = float(np.mean([
        abs(single_theta - THETA_SCHEDULE(15)),
        abs(single_theta - THETA_SCHEDULE(28)),
    ]))

    summary = {
        "sequential": {
            "ess_fractions": seq.ess_fractions().tolist(),
            "theta_means": seq_track.means.tolist(),
            "tracking_error": seq_err,
        },
        "single_shot": {
            "ess_fraction": single.diagnostics.ess_fraction,
            "theta_mean": single_theta,
            "tracking_error": single_err,
        },
        "theta_truth_by_segment": [THETA_SCHEDULE(15), THETA_SCHEDULE(28)],
    }
    write_json(output_dir / "ablation_sequential.json", summary)
    print("\nsequential vs single-shot:")
    print(f"  sequential: theta {seq_track.means.round(3).tolist()} "
          f"(truth [0.34, 0.20]), ESS% "
          f"{(100 * seq.ess_fractions()).round(1).tolist()}, "
          f"tracking err {seq_err:.3f}")
    print(f"  single-shot: theta {single_theta:.3f} fixed for both segments, "
          f"ESS% {100 * single.diagnostics.ess_fraction:.1f}, "
          f"tracking err {single_err:.3f}")

    # The single-shot estimate is one number for two regimes: its tracking
    # error cannot beat the sequential scheme's.
    assert seq_err < single_err + 0.02
    # Sequential theta must actually move between windows (truth drops 0.14).
    assert seq_track.means[0] - seq_track.means[1] > 0.04
