"""Tempered rescue of degenerate windows: coverage at equal particle-steps.

Measures the ROADMAP's "tempered continuation" claim on a *deliberately
degenerate* synthetic scenario (a likelihood sharp enough that every run's
per-window ESS fraction collapses below the degeneracy threshold): routing
degenerate windows through the staged tempered bridge
(:func:`repro.core.adaptive.temper_and_resample`, systematic resampling at
every stage) must **beat the plain single multinomial pass on CI90 truth
coverage while spending exactly the same particle-steps** — the bridge
reuses the window's simulated trajectories, so the rescue is free in
simulation cost.

Both arms run the same seeds, sizes, and windows; coverage is aggregated
over a small fixed seed ensemble so the headline is not hostage to one
resampling draw.  Like ``bench_adaptive.py`` the numbers are
*deterministic* (serial, fully seeded): the recorded ``speedup`` is the
tempered/plain ratio of covered CI90 checks, a pure function of the
configuration, gated in CI by ``benchmarks/check_trend.py``; wall-clock
times are context only.

Emits ``BENCH_tempering.json``.  Run standalone
(``python benchmarks/bench_tempering.py``) or under pytest-benchmark
(``pytest benchmarks/bench_tempering.py``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from _bench_util import time_best, write_payload
from repro.core.diagnostics import DEGENERACY_THRESHOLD
from repro.data import PiecewiseConstant
from repro.inference import CalibrationConfig, calibrate
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth

DEFAULT_BREAKS = (12, 20, 28, 36, 44, 52)
DEFAULT_SEEDS = (41, 42, 43, 44, 45)
TARGET = {"min_coverage_delta": 1, "min_multi_stage_windows": 1}


def make_scenario(population: int, seed: int, horizon: int):
    """Town-scale synthetic truth with time-varying theta and rho."""
    params = DiseaseParameters(population=population,
                               initial_exposed=max(1, population // 500))
    return make_ground_truth(
        params=params, horizon=horizon, seed=seed,
        theta_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                         values=(0.32, 0.22, 0.28)),
        rho_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                       values=(0.6, 0.85, 0.8)))


def truth_coverage(result, truth) -> dict:
    """How many per-window 90% CIs contain the known truth values."""
    covered, total = 0, 0
    for name in ("theta", "rho"):
        track = result.parameter_track(name)
        for w, wr in enumerate(result.windows):
            value = truth.truth_point(wr.window.end_day - 1)[name]
            covered += int(track.covers(w, value, "ci90"))
            total += 1
    return {"covered": covered, "total": total,
            "fraction": covered / total}


def summarize(results, truths, wall_seconds: float) -> dict:
    """Aggregate one arm's seed-ensemble of runs into the payload shape."""
    coverage = [truth_coverage(r, t) for r, t in zip(results, truths)]
    return {
        "coverage_ci90": {
            "covered": int(sum(c["covered"] for c in coverage)),
            "total": int(sum(c["total"] for c in coverage)),
            "per_seed": [c["covered"] for c in coverage],
        },
        "total_particle_steps": int(sum(r.total_particle_steps()
                                        for r in results)),
        "ess_fractions": [np.round(r.ess_fractions(), 4).tolist()
                          for r in results],
        "temper_stages": [[wr.diagnostics.temper_stages for wr in r.windows]
                          for r in results],
        "multi_stage_windows": int(sum(len(r.tempered_windows())
                                       for r in results)),
        "wall_seconds": wall_seconds,
    }


def run_tempering_bench(draws: int = 150, replicates: int = 2,
                        resample: int = 300, seeds=DEFAULT_SEEDS,
                        population: int = 60_000,
                        breaks=DEFAULT_BREAKS, sigma: float = 0.5,
                        temper_ess_floor: float = 0.25,
                        repeats: int = 1) -> dict:
    """Plain multinomial pass vs tempered rescue; returns the payload."""
    truth = make_scenario(population, seed=99, horizon=max(breaks))
    obs = truth.observations()
    base = dict(window_breaks=tuple(breaks), n_parameter_draws=draws,
                n_replicates=replicates, resample_size=resample, sigma=sigma)

    def run_arm(**extra):
        return [calibrate(obs, CalibrationConfig(**base, base_seed=seed,
                                                 **extra),
                          base_params=truth.params)
                for seed in seeds]

    plain_s, plain = time_best(run_arm, repeats)
    tempered_s, tempered = time_best(
        lambda: run_arm(temper_degenerate=True,
                        temper_ess_floor=temper_ess_floor), repeats)

    truths = [truth] * len(plain)
    plain_sum = summarize(plain, truths, plain_s)
    tempered_sum = summarize(tempered, truths, tempered_s)
    return {
        "benchmark": "tempered_rescue_coverage",
        "scenario": {"population": population, "window_breaks": list(breaks),
                     "n_parameter_draws": draws, "n_replicates": replicates,
                     "resample_size": resample, "sigma": sigma,
                     "base_seeds": list(seeds), "truth_seed": 99},
        "temper": {"ess_floor": temper_ess_floor,
                   "threshold": DEGENERACY_THRESHOLD,
                   "resampler": "systematic"},
        "plain": plain_sum,
        "tempered": tempered_sum,
        # tempered/plain ratio of covered CI90 checks at equal
        # particle-steps: the CI-gated headline number (deterministic —
        # every run is serial and fully seeded).  The denominator is
        # floored at one covered check so a plain arm that misses the
        # truth everywhere (possible under extreme --sigma/--seeds
        # choices) reports a finite, JSON-safe ratio instead of crashing.
        "speedup": (tempered_sum["coverage_ci90"]["covered"]
                    / max(1, plain_sum["coverage_ci90"]["covered"])),
        "target": dict(TARGET),
    }


def check_targets(payload: dict) -> None:
    """Assert the acceptance targets recorded in the payload."""
    plain, tempered = payload["plain"], payload["tempered"]
    assert tempered["total_particle_steps"] == plain["total_particle_steps"], (
        "the tempered rescue must be free in particle-steps: "
        f"{tempered['total_particle_steps']} vs "
        f"{plain['total_particle_steps']}")
    delta = (tempered["coverage_ci90"]["covered"]
             - plain["coverage_ci90"]["covered"])
    assert delta >= payload["target"]["min_coverage_delta"], (
        f"tempered coverage {tempered['coverage_ci90']} did not beat the "
        f"plain pass's {plain['coverage_ci90']} by at least "
        f"{payload['target']['min_coverage_delta']}")
    assert tempered["multi_stage_windows"] >= \
        payload["target"]["min_multi_stage_windows"], (
        "no window was routed through a multi-stage schedule — the "
        "scenario is not degenerate enough to exercise the bridge")
    assert plain["multi_stage_windows"] == 0


def test_tempered_rescue_coverage(benchmark, output_dir):
    """pytest-benchmark entry point; asserts the coverage targets."""
    from _bench_util import once

    payload = once(benchmark, run_tempering_bench)
    write_payload(payload, output_dir / "BENCH_tempering.json")
    print("\nTempered rescue bench:", json.dumps(payload, indent=2))
    check_targets(payload)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--draws", type=int, default=150)
    parser.add_argument("--replicates", type=int, default=2)
    parser.add_argument("--resample", type=int, default=300)
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=list(DEFAULT_SEEDS))
    parser.add_argument("--population", type=int, default=60_000)
    parser.add_argument("--sigma", type=float, default=0.5)
    parser.add_argument("--temper-floor", type=float, default=0.25)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_tempering.json"))
    args = parser.parse_args(argv)
    payload = run_tempering_bench(
        draws=args.draws, replicates=args.replicates, resample=args.resample,
        seeds=tuple(args.seeds), population=args.population,
        sigma=args.sigma, temper_ess_floor=args.temper_floor,
        repeats=args.repeats)
    write_payload(payload, args.output)
    for tag in ("plain", "tempered"):
        s = payload[tag]
        cov = s["coverage_ci90"]
        print(f"{tag:>8}: CI90 coverage {cov['covered']}/{cov['total']} "
              f"(per seed {cov['per_seed']}) | "
              f"{s['total_particle_steps']} particle-steps | "
              f"{s['multi_stage_windows']} multi-stage window(s) | "
              f"{s['wall_seconds']:.2f}s")
    print(f"coverage ratio {payload['speedup']:.2f}x at equal "
          f"particle-steps")
    check_targets(payload)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
