"""Throughput benchmark of the ensemble weighting hot path.

Weighs a synthetic particle ensemble (random case/death segments, random
rho) against a two-stream observation window through both implementations of
the weighting step:

* **scalar** — the per-particle reference loop
  (``ObservationModel.loglik`` per particle), and
* **batched** — the vectorized subsystem
  (``ParticleEnsemble.segment_matrix`` + ``BinomialBiasModel.apply_batch`` +
  ``Likelihood.loglik_batch`` via ``ObservationModel.loglik_ensemble``),

in both bias modes, and emits a ``BENCH_weighting.json`` baseline with
per-path timings, particle throughput, and the batched/scalar speedup.  No
simulation runs here: the benchmark isolates exactly the weighting cost the
sequential calibrator pays once per window.

Run standalone (``python benchmarks/bench_weighting.py``) or under
pytest-benchmark (``pytest benchmarks/bench_weighting.py``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from _bench_util import time_best, write_payload
from repro.core import Particle, ParticleEnsemble, paper_observation_model
from repro.data import CASES, DEATHS, ObservationSet, ObservationSource, TimeSeries
from repro.seir import SeedSequenceBank, Trajectory

START_DAY = 20
DEFAULT_PARTICLES = 5_000
DEFAULT_DAYS = 14


def build_ensemble(n_particles: int, n_days: int,
                   rng: np.random.Generator) -> ParticleEnsemble:
    """Synthetic particles with epidemic-scale count segments."""
    cases = rng.poisson(lam=rng.uniform(50, 400, size=n_particles)[:, None],
                        size=(n_particles, n_days)).astype(np.float64)
    deaths = rng.poisson(3.0, size=(n_particles, n_days)).astype(np.float64)
    zeros = np.zeros(n_days)
    rho = rng.uniform(0.3, 0.95, size=n_particles)
    theta = rng.uniform(0.1, 0.5, size=n_particles)
    particles = [
        Particle(params={"theta": float(theta[i]), "rho": float(rho[i])},
                 seed=i,
                 segment=Trajectory(START_DAY, cases[i], deaths[i],
                                    zeros, zeros))
        for i in range(n_particles)
    ]
    return ParticleEnsemble(particles)


def build_observations(n_days: int, rng: np.random.Generator) -> ObservationSet:
    return ObservationSet.of(
        ObservationSource(CASES,
                          TimeSeries(START_DAY, rng.poisson(120, size=n_days)),
                          channel=CASES, biased=True),
        ObservationSource(DEATHS,
                          TimeSeries(START_DAY, rng.poisson(3, size=n_days)),
                          channel=DEATHS, biased=False))


def run_weighting_bench(n_particles: int = DEFAULT_PARTICLES,
                        n_days: int = DEFAULT_DAYS,
                        repeats: int = 3, seed: int = 20240215) -> dict:
    """Time scalar vs batched weighting; return the JSON payload."""
    rng = np.random.Generator(np.random.PCG64(seed))
    ensemble = build_ensemble(n_particles, n_days, rng)
    observations = build_observations(n_days, rng)
    bank = SeedSequenceBank(seed)
    rho = ensemble.values("rho")

    payload: dict = {
        "benchmark": "ensemble_weighting",
        "n_particles": n_particles,
        "n_days": n_days,
        "repeats": repeats,
        "modes": {},
    }
    for mode in ("mean", "sample"):
        om = paper_observation_model(bias_mode=mode)

        def scalar():
            r = bank.ancillary_generator(1, window_index=0)
            return np.array([om.loglik(observations, p.segment,
                                       p.params["rho"], r)
                             for p in ensemble])

        def batched():
            r = bank.ancillary_generator(1, window_index=0)
            return om.loglik_ensemble(observations, ensemble, rho, r)

        scalar_s, scalar_ll = time_best(scalar, repeats)
        batched_s, batched_ll = time_best(batched, repeats)
        max_abs_diff = float(np.max(np.abs(scalar_ll - batched_ll)))
        payload["modes"][mode] = {
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "speedup": scalar_s / batched_s,
            "scalar_particles_per_sec": n_particles / scalar_s,
            "batched_particles_per_sec": n_particles / batched_s,
            "max_abs_loglik_diff": max_abs_diff,
        }
    return payload


def test_weighting_throughput(benchmark, output_dir):
    """pytest-benchmark entry point; also checks batched/scalar agreement."""
    from _bench_util import once

    payload = once(benchmark, run_weighting_bench)
    write_payload(payload, output_dir / "BENCH_weighting.json")
    print("\nWeighting bench:", json.dumps(payload, indent=2))
    for mode, stats in payload["modes"].items():
        assert stats["max_abs_loglik_diff"] < 1e-6, mode
        assert stats["speedup"] > 1.0, mode


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-particles", type=int, default=DEFAULT_PARTICLES)
    parser.add_argument("--n-days", type=int, default=DEFAULT_DAYS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=20240215)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_weighting.json"))
    args = parser.parse_args(argv)
    payload = run_weighting_bench(args.n_particles, args.n_days,
                                  args.repeats, args.seed)
    write_payload(payload, args.output)
    for mode, stats in payload["modes"].items():
        print(f"{mode:>6}: scalar {stats['scalar_seconds']:.3f}s "
              f"({stats['scalar_particles_per_sec']:.0f} p/s) | "
              f"batched {stats['batched_seconds']:.4f}s "
              f"({stats['batched_particles_per_sec']:.0f} p/s) | "
              f"speedup {stats['speedup']:.1f}x | "
              f"max |dll| {stats['max_abs_loglik_diff']:.2e}")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
