"""Shared benchmark infrastructure.

Every benchmark regenerates one figure or claim from the paper and writes
its data (CSV/JSON/ASCII) to ``benchmarks/output/``.  Scale is controlled by
``REPRO_BENCH_SCALE``:

* ``laptop`` (default) — minutes on two cores; same algorithms, smaller
  ensembles.
* ``full`` — the paper's ensemble sizes (25,000 draws x 20 replicates);
  needs cluster-class hardware.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.hpc import ProcessExecutor, SerialExecutor

OUTPUT_DIR = Path(__file__).parent / "output"


@dataclass(frozen=True)
class BenchScale:
    name: str
    fig3_draws: int
    fig3_replicates: int
    fig3_resample: int
    seq_draws: int
    seq_replicates: int
    seq_resample: int


_SCALES = {
    "laptop": BenchScale(name="laptop", fig3_draws=300, fig3_replicates=5,
                         fig3_resample=1500, seq_draws=300,
                         seq_replicates=4, seq_resample=400),
    "full": BenchScale(name="full", fig3_draws=25_000, fig3_replicates=20,
                       fig3_resample=10_000, seq_draws=25_000,
                       seq_replicates=20, seq_resample=10_000),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "laptop")
    if name not in _SCALES:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}")
    return _SCALES[name]


# Re-exported for backwards compatibility with early bench modules.
from _bench_util import once  # noqa: E402,F401


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def paper_truth():
    """The section V-A ground truth over the four calibration windows."""
    from repro.sim import make_fig2_ground_truth
    return make_fig2_ground_truth(seed=777, horizon=76)


@pytest.fixture(scope="session")
def executor():
    """Process pool across available cores (serial on single-core boxes)."""
    cores = os.cpu_count() or 1
    if cores == 1:
        yield SerialExecutor()
    else:
        ex = ProcessExecutor(max_workers=cores)
        yield ex
        ex.close()


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
