"""Figure 3 — single-window importance-sampling calibration (section V-B).

Regenerates the paper's first experiment: calibrate to reported case counts
over days 20-33 only, with theta ~ U(0.1, 0.5) and rho ~ Beta(4, 1), common
random seeds across parameter draws, the Gaussian likelihood on square-root
counts (sigma = 1), and multinomial resampling to a posterior sample.

Paper shapes reproduced (Fig 3 panels):

* posterior trajectories concentrate around the observed counts relative to
  the prior cloud (left panel);
* the theta posterior concentrates sharply relative to its uniform prior
  (right panel);
* the rho posterior moves less than theta's — the strong Beta(4, 1) prior
  dominates ("the posterior on rho exhibits less influence compared to that
  on theta", section V-B) (center panel).
"""

from __future__ import annotations

import numpy as np

from _bench_util import once
from repro.baselines import single_shot_importance_sampling
from repro.core import (BinomialBiasModel, marginal_histogram,
                        paper_first_window_prior, paper_observation_model,
                        trajectory_ribbon)
from repro.seir import Trajectory, chicago_defaults
from repro.viz import write_json, write_ribbon_csv


def observed_scale_trajectories(posterior, window):
    """Per-particle simulated *observed* cases: mean-thin true cases by the
    particle's own rho (the series the paper plots against the black dots)."""
    bias = BinomialBiasModel("mean")
    out = []
    for p in posterior:
        seg = p.segment.window(*window)
        thinned = bias.apply(seg.infections, p.params["rho"])
        zero = np.zeros_like(thinned)
        out.append(Trajectory(seg.start_day, thinned, zero, zero, zero))
    return out

WINDOW = (20, 34)


def test_fig3_single_window_calibration(benchmark, scale, output_dir,
                                        executor, paper_truth):
    prior = paper_first_window_prior()

    def run():
        return single_shot_importance_sampling(
            paper_truth.observations(), chicago_defaults(), prior,
            paper_observation_model(),
            start_day=WINDOW[0], end_day=WINDOW[1],
            n_parameter_draws=scale.fig3_draws,
            n_replicates=scale.fig3_replicates,
            resample_size=scale.fig3_resample,
            base_seed=101, executor=executor)

    result = once(benchmark, run)
    posterior = result.posterior

    # --- figure data -----------------------------------------------------
    rng = np.random.Generator(np.random.PCG64(0))
    theta_prior = prior.marginal("theta").sample(20_000, rng)
    rho_prior = prior.marginal("rho").sample(20_000, rng)
    theta_post = posterior.values("theta")
    rho_post = posterior.values("rho")

    true_ribbon = trajectory_ribbon(
        [p.segment.window(*WINDOW) for p in posterior], "cases")
    write_ribbon_csv(output_dir / "fig3_true_case_trajectories.csv",
                     true_ribbon,
                     truth=paper_truth.true_cases.window(*WINDOW))
    ribbon = trajectory_ribbon(
        observed_scale_trajectories(posterior, WINDOW), "cases")
    write_ribbon_csv(output_dir / "fig3_posterior_trajectories.csv", ribbon,
                     truth=paper_truth.observed_cases.window(*WINDOW))
    summary = {
        "window": "Days 20-33",
        "n_prior_trajectories": scale.fig3_draws * scale.fig3_replicates,
        "posterior_sample": scale.fig3_resample,
        "ess": result.diagnostics.ess,
        "ess_fraction": result.diagnostics.ess_fraction,
        "theta": {
            "truth": paper_truth.theta_true(26),
            "prior_mean": float(theta_prior.mean()),
            "prior_sd": float(theta_prior.std()),
            "posterior_mean": posterior.weighted_mean("theta"),
            "posterior_sd": float(theta_post.std()),
            "ci90": posterior.credible_interval("theta", 0.9),
        },
        "rho": {
            "truth": paper_truth.rho_true(26),
            "prior_mean": float(rho_prior.mean()),
            "prior_sd": float(rho_prior.std()),
            "posterior_mean": posterior.weighted_mean("rho"),
            "posterior_sd": float(rho_post.std()),
            "ci90": posterior.credible_interval("rho", 0.9),
        },
    }
    write_json(output_dir / "fig3_summary.json", summary)
    for name, post, support in (("theta", theta_post, (0.0, 0.6)),
                                ("rho", rho_post, (0.0, 1.0))):
        edges, dens = marginal_histogram(post, bins=30, support=support)
        np.savetxt(output_dir / f"fig3_{name}_posterior_density.csv",
                   np.column_stack([edges[:-1], edges[1:], dens]),
                   delimiter=",", header="lo,hi,density", comments="")
    print("\nFig 3 summary:", summary)

    # --- shape assertions --------------------------------------------------
    t = summary["theta"]
    # theta concentrates sharply vs the uniform prior...
    assert t["posterior_sd"] < 0.5 * t["prior_sd"]
    # ...near the window-1 truth (0.30).
    assert abs(t["posterior_mean"] - t["truth"]) < 0.08
    r = summary["rho"]
    # rho is prior-dominated: posterior shift relative to prior dispersion
    # is weaker than theta's shift (the paper's center-panel observation).
    theta_shrink = t["posterior_sd"] / t["prior_sd"]
    rho_shrink = r["posterior_sd"] / r["prior_sd"]
    assert theta_shrink < rho_shrink + 0.35
    # posterior trajectory band hugs the observations: the observed counts
    # fall inside the 90% ribbon for most window days.
    obs = paper_truth.observed_cases.window(*WINDOW).values
    assert ribbon.coverage_of(obs, 0.05, 0.95) >= 0.5
