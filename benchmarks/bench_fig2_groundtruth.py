"""Figure 2 — simulated ground truth (paper section V-A).

Regenerates the three series of Fig 2: true daily cases, binomially thinned
observed cases, and deaths over 100 days, with the paper's piecewise
transmission (0.30/0.27/0.25/0.40) and reporting (0.60/0.70/0.85/0.80)
schedules on a Chicago-scale population.

Shape checks (the paper's qualitative content):

* cases grow from tens to thousands on a log scale across the horizon;
* observed counts are a rho-fraction of true counts, tracking the schedule;
* deaths are delayed and two orders of magnitude below cases.
"""

from __future__ import annotations

import numpy as np

from _bench_util import once
from repro.sim import make_fig2_ground_truth
from repro.viz import line_plot, write_series_csv


def test_fig2_ground_truth(benchmark, output_dir):
    truth = once(benchmark, lambda: make_fig2_ground_truth(seed=777,
                                                           horizon=100))

    cases = truth.true_cases
    observed = truth.observed_cases
    deaths = truth.deaths

    # --- persist the exact figure series -------------------------------
    write_series_csv(output_dir / "fig2_series.csv", {
        "true_cases": cases, "observed_cases": observed, "deaths": deaths})
    chart = "\n\n".join([
        line_plot(np.maximum(cases.values, 1), title="Fig 2: true cases",
                  log_scale=True),
        line_plot(np.maximum(observed.values, 1),
                  title="Fig 2: observed cases", log_scale=True),
        line_plot(np.maximum(deaths.values, 0.1), title="Fig 2: deaths"),
    ])
    (output_dir / "fig2_ascii.txt").write_text(chart + "\n")

    rows = ["day,true_cases,observed_cases,deaths,theta_true,rho_true"]
    for day in (5, 20, 34, 48, 62, 75, 99):
        rows.append(f"{day},{cases.value_on(day):.0f},"
                    f"{observed.value_on(day):.0f},{deaths.value_on(day):.0f},"
                    f"{truth.theta_true(day)},{truth.rho_true(day)}")
    (output_dir / "fig2_rows.csv").write_text("\n".join(rows) + "\n")
    print("\n" + "\n".join(rows))

    # --- shape assertions ------------------------------------------------
    # Exponential growth over the horizon (paper axis: ~20 -> ~5000).
    assert cases.values[99] > 50 * max(cases.values[5], 1.0)
    # Thinning: observed below true, everywhere.
    assert np.all(observed.values <= cases.values)
    # Observed fraction tracks the rho schedule segment-wise (+-25%).
    for lo, hi, rho in ((5, 33, 0.60), (34, 47, 0.70), (48, 61, 0.85),
                        (62, 99, 0.80)):
        frac = observed.window(lo, hi + 1).total() / max(
            cases.window(lo, hi + 1).total(), 1.0)
        assert abs(frac - rho) < 0.25 * rho, (lo, hi, frac, rho)
    # Deaths: delayed, small relative to cases (IFR << 1).
    assert deaths.values[:20].sum() <= 2
    assert 0 < deaths.total() < 0.05 * cases.total()
    # Final-segment acceleration: theta jumps to 0.40 at day 62.
    growth_late = cases.values[90:100].mean() / max(cases.values[62:72].mean(), 1)
    assert growth_late > 1.5
