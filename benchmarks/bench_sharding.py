"""Multi-core scaling benchmark of the sharded batched simulation layer.

Two claims of the sharding PR are measured here:

* **Sharded window simulation** — one calibration window (14 days by
  default) advanced for a particle cloud through ``simulate_groups``:
  the single-process batched engine (one shard, serial executor — PR 2's
  fast path) against the same cloud split into ``n`` shards fanned across a
  warmed :class:`~repro.hpc.executor.ProcessExecutor`.  The headline
  ``speedup`` per ensemble size is the best shard count's wall-clock gain
  over the single-process path; the target is >= 2x at 10,000 particles
  with >= 4 workers (only assessable on a >= 4-core host — ``cpu_count``
  is recorded so trend checks can judge the baseline's provenance).
* **Batched forecasting** — ``forecast_from_posterior`` through the scalar
  per-particle task path vs the sharded batched path (both single-process,
  so the ratio isolates batching, not parallelism).

Emits ``BENCH_sharding.json`` with per-path timings and speedups
(``benchmarks/check_trend.py`` gates every ``speedup`` entry in CI).

Run standalone (``python benchmarks/bench_sharding.py``) or under
pytest-benchmark (``pytest benchmarks/bench_sharding.py``).
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import numpy as np

from _bench_util import time_best, write_payload
from repro.core import Particle, ParticleEnsemble
from repro.hpc import (Executor, GroupSpec, ProcessExecutor, SerialExecutor,
                       simulate_groups)
from repro.inference import forecast_from_posterior
from repro.seir import BatchedBinomialLeapEngine, DiseaseParameters

DEFAULT_SIZES = (2_000, 10_000)
DEFAULT_SHARDS = (1, 2, 4, 8)
DEFAULT_DAYS = 14
STEPS_PER_DAY = 4
ENGINE = "binomial_leap_batched"
TARGET = {"n_particles": 10_000, "min_speedup": 2.0, "min_workers": 4}


def _seeds_and_thetas(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.Generator(np.random.PCG64(seed))
    seeds = rng.integers(0, 2**40, size=n, dtype=np.int64)
    thetas = rng.uniform(0.1, 0.5, size=n)
    return seeds, thetas


def _warm(_x: int) -> int:
    """Trivial picklable task used to pre-spawn pool workers."""
    return _x


def run_window(executor: Executor, params: DiseaseParameters,
               seeds: np.ndarray, thetas: np.ndarray, n_days: int,
               n_shards: int) -> float:
    """One sharded window simulation; returns mean total infections."""
    spec = GroupSpec(params=params, seeds=seeds, thetas=thetas, start_day=0)
    [group] = simulate_groups(
        executor, [spec], end_day=n_days, engine=ENGINE,
        engine_options={"steps_per_day": STEPS_PER_DAY}, n_shards=n_shards)
    totals = np.concatenate([r.batch.infections.sum(axis=1)
                             for r in group.results])
    return float(totals.mean())


def make_posterior(params: DiseaseParameters, n: int, seed: int,
                   checkpoint_day: int = 10) -> ParticleEnsemble:
    """A synthetic posterior with leap-format checkpoints to forecast from."""
    seeds, thetas = _seeds_and_thetas(n, seed)
    engine = BatchedBinomialLeapEngine(params, seeds, thetas=thetas,
                                       steps_per_day=STEPS_PER_DAY)
    engine.run_until(checkpoint_day)
    return ParticleEnsemble([
        Particle(params={"theta": float(thetas[i]), "rho": 0.7},
                 seed=int(seeds[i]), checkpoint=engine.particle_checkpoint(i))
        for i in range(n)])


def run_forecast_bench(params: DiseaseParameters, n_particles: int,
                       horizon: int, seed: int, repeats: int) -> dict:
    """Scalar vs batched forecast timings (both single-process)."""
    posterior = make_posterior(params, n_particles, seed)
    scalar_s, scalar_fc = time_best(
        lambda: forecast_from_posterior(posterior, horizon, base_seed=seed,
                                        path="scalar"), repeats)
    batched_s, batched_fc = time_best(
        lambda: forecast_from_posterior(posterior, horizon, base_seed=seed,
                                        path="batched"), repeats)
    mean_total = lambda fc: float(np.mean(  # noqa: E731
        [t.infections.sum() for t in fc.trajectories]))
    return {
        "n_particles": n_particles,
        "horizon_days": horizon,
        "scalar_seconds": scalar_s,
        "batched_seconds": batched_s,
        "speedup": scalar_s / batched_s,
        "scalar_mean_total_infections": mean_total(scalar_fc),
        "batched_mean_total_infections": mean_total(batched_fc),
    }


def run_sharding_bench(sizes=DEFAULT_SIZES, shard_counts=DEFAULT_SHARDS,
                       n_days: int = DEFAULT_DAYS, workers: int | None = None,
                       repeats: int = 1, seed: int = 20240215,
                       population: int = 2_700_000,
                       forecast_particles: int = 2_000) -> dict:
    """Time single-process vs sharded window simulation; return the payload."""
    cpu = os.cpu_count() or 1
    workers = workers or min(max(shard_counts), cpu)
    params = DiseaseParameters(population=population,
                               initial_exposed=max(1, population // 5400))
    payload: dict = {
        "benchmark": "sharded_simulation",
        "n_days": n_days,
        "steps_per_day": STEPS_PER_DAY,
        "population": params.population,
        "repeats": repeats,
        "cpu_count": cpu,
        "workers": workers,
        "target": dict(TARGET),
        "sizes": {},
    }
    serial = SerialExecutor()
    with ProcessExecutor(max_workers=workers) as pool:
        pool.map(_warm, list(range(workers * 2)))  # pre-spawn workers
        for n in sizes:
            seeds, thetas = _seeds_and_thetas(n, seed)
            single_s, single_mean = time_best(
                lambda: run_window(serial, params, seeds, thetas, n_days, 1),
                repeats)
            entry: dict = {"single_process_seconds": single_s,
                           "single_process_mean_total_infections": single_mean,
                           "shards": {}}
            best = (0.0, None)
            for k in shard_counts:
                sharded_s, sharded_mean = time_best(
                    lambda: run_window(pool, params, seeds, thetas, n_days, k),
                    repeats)
                ratio = single_s / sharded_s
                entry["shards"][str(k)] = {
                    "seconds": sharded_s,
                    "speedup": ratio,
                    "mean_total_infections": sharded_mean,
                }
                if ratio > best[0]:
                    best = (ratio, k)
            entry["speedup"] = best[0]
            entry["best_n_shards"] = best[1]
            payload["sizes"][str(n)] = entry
    payload["forecast"] = run_forecast_bench(params, forecast_particles,
                                             n_days, seed, repeats)
    return payload


def test_sharding_throughput(benchmark, output_dir):
    """pytest-benchmark entry point; target asserted on capable hosts only."""
    from _bench_util import once

    cpu = os.cpu_count() or 1
    payload = once(benchmark, lambda: run_sharding_bench(
        sizes=(1000,), shard_counts=(1, min(4, cpu)),
        workers=min(4, cpu), population=500_000, forecast_particles=500))
    write_payload(payload, output_dir / "BENCH_sharding.json")
    print("\nSharding bench:", json.dumps(payload, indent=2))
    assert payload["forecast"]["speedup"] > 1.5
    np.testing.assert_allclose(
        payload["forecast"]["batched_mean_total_infections"],
        payload["forecast"]["scalar_mean_total_infections"], rtol=0.25)
    if cpu >= TARGET["min_workers"]:
        assert payload["sizes"]["1000"]["speedup"] > 1.0


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--shards", type=int, nargs="+",
                        default=list(DEFAULT_SHARDS))
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--n-days", type=int, default=DEFAULT_DAYS)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=20240215)
    parser.add_argument("--population", type=int, default=2_700_000)
    parser.add_argument("--forecast-particles", type=int, default=2_000)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_sharding.json"))
    args = parser.parse_args(argv)
    payload = run_sharding_bench(tuple(args.sizes), tuple(args.shards),
                                 args.n_days, args.workers, args.repeats,
                                 args.seed, args.population,
                                 args.forecast_particles)
    write_payload(payload, args.output)
    for n, stats in payload["sizes"].items():
        line = " | ".join(
            f"{k} shard(s) {s['seconds']:.3f}s ({s['speedup']:.2f}x)"
            for k, s in stats["shards"].items())
        print(f"{int(n):>6} particles: single-process "
              f"{stats['single_process_seconds']:.3f}s | {line}")
    fc = payload["forecast"]
    print(f"forecast ({fc['n_particles']} particles, {fc['horizon_days']}d): "
          f"scalar {fc['scalar_seconds']:.3f}s | batched "
          f"{fc['batched_seconds']:.3f}s | speedup {fc['speedup']:.1f}x")
    if (os.cpu_count() or 1) < TARGET["min_workers"]:
        print(f"note: host has {os.cpu_count()} core(s); the "
              f">= {TARGET['min_speedup']}x multi-core target needs "
              f">= {TARGET['min_workers']} workers with real cores")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
