"""HPC concurrency claims (paper sections I-II).

The ensemble step is embarrassingly parallel; the paper's framework "is
designed to exploit the concurrency provided by HPC resources".  On this
box we can only demonstrate the shape, not cluster numbers:

* process-pool speedup over serial execution for a fixed ensemble;
* thread pools do NOT speed up this workload (GIL-bound samplers) — the
  reason the process/MPI model is the right one;
* the MPI-like communicator's scatter/compute/allreduce round trip works
  and its collective overhead is small relative to simulation time;
* scheduling-policy comparison on the heterogeneous window workload
  (static block vs cyclic vs dynamic claiming).
"""

from __future__ import annotations

import os
import time

import numpy as np

from _bench_util import once
from repro.hpc import (ProcessExecutor, SerialExecutor, ThreadExecutor,
                       compare_policies)
from repro.seir import chicago_defaults
from repro.sim import common_seed_grid, run_ensemble
from repro.viz import write_json

N_DRAWS = 40
N_SEEDS = 2
END_DAY = 34


def _spec():
    rng = np.random.Generator(np.random.PCG64(3))
    thetas = rng.uniform(0.1, 0.5, size=N_DRAWS)
    return common_seed_grid(
        param_updates=[{"transmission_rate": float(t)} for t in thetas],
        seeds=[11, 12][:N_SEEDS], base_params=chicago_defaults(),
        end_day=END_DAY)


def test_executor_scaling(benchmark, output_dir):
    spec = _spec()
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    serial_result = run_ensemble(spec, SerialExecutor())
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with ThreadExecutor(max_workers=cores) as ex:
        run_ensemble(spec, ex)
    thread_s = time.perf_counter() - t0

    with ProcessExecutor(max_workers=cores) as ex:
        run_ensemble(spec, ex)  # warm the pool outside the timed region
        process_result = once(benchmark, lambda: run_ensemble(spec, ex))
    process_s = benchmark.stats.stats.mean

    summary = {
        "n_members": spec.n_members,
        "end_day": END_DAY,
        "cores": cores,
        "serial_seconds": serial_s,
        "thread_seconds": thread_s,
        "process_seconds": process_s,
        "process_speedup": serial_s / process_s if process_s else None,
    }
    write_json(output_dir / "scaling_executors.json", summary)
    print(f"\nexecutors on {cores} cores: serial {serial_s:.2f}s, "
          f"thread {thread_s:.2f}s, process {process_s:.2f}s "
          f"(speedup {summary['process_speedup']:.2f}x)")

    # Results must be identical across backends (pure (theta, s) mapping).
    for a, b in zip(serial_result.trajectories, process_result.trajectories):
        assert np.array_equal(a.infections, b.infections)
    if cores > 1:
        # Process pool must not lose to serial (and typically wins ~1.4x on
        # 2 cores); the loose bound keeps the bench robust when the machine
        # is under external load — the recorded JSON carries the speedup.
        assert process_s < serial_s * 1.10
        # ...and the GIL keeps threads from scaling similarly.
        assert process_s < thread_s * 1.10


def test_scheduling_policies(benchmark, output_dir):
    """Makespan of static vs dynamic assignment on heterogeneous windows.

    Task costs model the real pattern: later windows cost more because the
    epidemic is larger (cost grows with window index and with theta).
    """
    rng = np.random.Generator(np.random.PCG64(8))
    base = np.repeat(np.array([1.0, 1.6, 2.6, 4.2]), 50)  # 4 windows x 50
    costs = base * rng.lognormal(0.0, 0.35, size=base.size)

    results = once(benchmark, lambda: compare_policies(costs, n_workers=16))
    summary = {name: {"makespan": res.makespan,
                      "efficiency": res.efficiency}
               for name, res in results.items()}
    write_json(output_dir / "scaling_scheduling.json", summary)
    print("\nscheduling policies (16 workers):")
    for name, row in summary.items():
        print(f"  {name}: makespan {row['makespan']:.1f} "
              f"efficiency {row['efficiency']:.2f}")

    assert results["dynamic"].makespan <= results["static_block"].makespan
    assert results["dynamic"].efficiency > 0.9
