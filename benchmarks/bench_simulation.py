"""Throughput benchmark of the window-simulation hot path.

Simulates one calibration window (14 days by default) for an ensemble of
particles through both simulation paths the sequential calibrator offers:

* **scalar** — one :class:`~repro.seir.StochasticSEIRModel` per particle,
  exactly the per-task work of ``_run_first_window_task`` (engine
  construction, day loop, checkpoint ``to_dict`` round-trip), and
* **batched** — one :class:`~repro.seir.BatchedBinomialLeapEngine` stepping
  the whole cloud as a ``(n_particles, n_compartments)`` state matrix,
  including the per-particle ``Trajectory``/checkpoint extraction the
  calibrator performs when building its ensemble,

at several ensemble sizes, and emits a ``BENCH_simulation.json`` baseline
with per-path timings, particle throughput, the batched/scalar speedup, and
the two paths' mean total infections (a coarse distributional-parity
readout; the rigorous moment tests live in
``tests/seir/test_batch_engine.py``).

Run standalone (``python benchmarks/bench_simulation.py``) or under
pytest-benchmark (``pytest benchmarks/bench_simulation.py``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from _bench_util import time_best, write_payload
from repro.seir import (BatchedBinomialLeapEngine, Checkpoint,
                        DiseaseParameters, StochasticSEIRModel)

DEFAULT_SIZES = (250, 1000, 2000)
DEFAULT_DAYS = 14
STEPS_PER_DAY = 4
TARGET_SIZE = 2000
TARGET_SPEEDUP = 5.0


def _seeds_and_thetas(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.Generator(np.random.PCG64(seed))
    seeds = rng.integers(0, 2**40, size=n, dtype=np.int64)
    thetas = rng.uniform(0.1, 0.5, size=n)
    return seeds, thetas


def run_scalar(params: DiseaseParameters, seeds: np.ndarray,
               thetas: np.ndarray, n_days: int) -> float:
    """Per-particle window simulation; returns mean total infections."""
    totals = np.empty(len(seeds))
    for i, (seed, theta) in enumerate(zip(seeds, thetas)):
        model = StochasticSEIRModel(
            params.with_updates(transmission_rate=float(theta)), int(seed),
            engine="binomial_leap", steps_per_day=STEPS_PER_DAY)
        trajectory = model.run_until(n_days)
        model.checkpoint().to_dict()
        totals[i] = trajectory.total_infections()
    return float(totals.mean())


def run_batched(params: DiseaseParameters, seeds: np.ndarray,
                thetas: np.ndarray, n_days: int) -> float:
    """Whole-cloud window simulation; returns mean total infections."""
    engine = BatchedBinomialLeapEngine(params, seeds, thetas=thetas,
                                       steps_per_day=STEPS_PER_DAY)
    batch = engine.run_until(n_days)
    for i in range(engine.n_particles):
        batch.trajectory(i)
        Checkpoint(params=params, snapshot=engine.particle_snapshot(i))
    return float(batch.infections.sum(axis=1).mean())


def run_simulation_bench(sizes=DEFAULT_SIZES, n_days: int = DEFAULT_DAYS,
                         repeats: int = 1, seed: int = 20240215,
                         population: int = 2_700_000) -> dict:
    """Time scalar vs batched window simulation; return the JSON payload."""
    params = DiseaseParameters(population=population,
                               initial_exposed=max(1, population // 5400))
    payload: dict = {
        "benchmark": "window_simulation",
        "n_days": n_days,
        "steps_per_day": STEPS_PER_DAY,
        "population": params.population,
        "repeats": repeats,
        "target": {"n_particles": TARGET_SIZE, "min_speedup": TARGET_SPEEDUP},
        "sizes": {},
    }
    for n in sizes:
        seeds, thetas = _seeds_and_thetas(n, seed)
        scalar_s, scalar_mean = time_best(
            lambda: run_scalar(params, seeds, thetas, n_days), repeats)
        batched_s, batched_mean = time_best(
            lambda: run_batched(params, seeds, thetas, n_days), repeats)
        payload["sizes"][str(n)] = {
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "speedup": scalar_s / batched_s,
            "scalar_particles_per_sec": n / scalar_s,
            "batched_particles_per_sec": n / batched_s,
            "scalar_mean_total_infections": scalar_mean,
            "batched_mean_total_infections": batched_mean,
        }
    return payload


def test_simulation_throughput(benchmark, output_dir):
    """pytest-benchmark entry point; checks speedup and coarse parity."""
    from _bench_util import once

    payload = once(benchmark, lambda: run_simulation_bench(sizes=(250, 2000)))
    write_payload(payload, output_dir / "BENCH_simulation.json")
    print("\nSimulation bench:", json.dumps(payload, indent=2))
    for n, stats in payload["sizes"].items():
        assert stats["speedup"] > 1.0, n
        np.testing.assert_allclose(stats["batched_mean_total_infections"],
                                   stats["scalar_mean_total_infections"],
                                   rtol=0.25)
    assert payload["sizes"]["2000"]["speedup"] > 2.0


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=list(DEFAULT_SIZES))
    parser.add_argument("--n-days", type=int, default=DEFAULT_DAYS)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--seed", type=int, default=20240215)
    parser.add_argument("--population", type=int, default=2_700_000)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_simulation.json"))
    args = parser.parse_args(argv)
    payload = run_simulation_bench(tuple(args.sizes), args.n_days,
                                   args.repeats, args.seed, args.population)
    write_payload(payload, args.output)
    for n, stats in payload["sizes"].items():
        print(f"{int(n):>6} particles: scalar {stats['scalar_seconds']:.3f}s "
              f"({stats['scalar_particles_per_sec']:.0f} p/s) | "
              f"batched {stats['batched_seconds']:.4f}s "
              f"({stats['batched_particles_per_sec']:.0f} p/s) | "
              f"speedup {stats['speedup']:.1f}x")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
