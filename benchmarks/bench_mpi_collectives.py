"""MPI-like collective round-trip (the distributed-normalisation pattern).

In a multi-node deployment each rank computes log-weights for its particle
block and the normalising constant is obtained with a log-sum-exp
all-reduce.  This bench runs that exact pattern on the in-process SPMD
communicator — scatter parameter blocks, compute, allreduce — and checks the
result is identical to the serial computation, timing the collective
overhead.
"""

from __future__ import annotations

import numpy as np

from _bench_util import once
from repro.hpc import block_partition, run_spmd
from repro.viz import write_json

N_PARTICLES = 4096


def _weights() -> np.ndarray:
    rng = np.random.Generator(np.random.PCG64(5))
    return rng.normal(-250.0, 30.0, size=N_PARTICLES)


def spmd_normalise(comm):
    """Rank-local logsumexp over a scattered block, then global allreduce."""
    if comm.rank == 0:
        weights = _weights()
        parts = block_partition(N_PARTICLES, comm.size)
        chunks = [weights[p] for p in parts]
    else:
        chunks = None
    mine = comm.scatter(chunks, root=0)
    local = float(np.logaddexp.reduce(mine)) if len(mine) else float("-inf")
    total = comm.allreduce(local, op="logsumexp")
    comm.barrier()
    return total


def test_spmd_weight_normalisation(benchmark, output_dir):
    expected = float(np.logaddexp.reduce(_weights()))

    results = once(benchmark, lambda: run_spmd(spmd_normalise, 2))

    write_json(output_dir / "mpi_collectives.json", {
        "n_particles": N_PARTICLES,
        "ranks": 2,
        "global_logsumexp": results[0],
        "serial_logsumexp": expected,
        "spawn_plus_roundtrip_seconds": benchmark.stats.stats.mean,
    })
    print(f"\nSPMD logsumexp across 2 ranks: {results[0]:.6f} "
          f"(serial {expected:.6f})")
    # Every rank sees the identical, correct normaliser.
    for value in results:
        assert value == pytest.approx(expected)


import pytest  # noqa: E402
