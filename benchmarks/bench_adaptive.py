"""Adaptive ensemble sizing: posterior quality per particle-step.

Measures the ROADMAP's "adaptive ensemble sizing" claim on the synthetic
ground-truth scenario: an :class:`~repro.core.ensemble_control.ESSTargetPolicy`
run must reach **posterior CI coverage of the truth at least equal to the
fixed-size baseline while spending at most 70% of its total particle-steps**
(particle-days summed over every window, burn-in included).

Unlike the throughput benches, the headline numbers here are *deterministic*:
both runs are serial and fully seeded, so the recorded ``speedup`` (the
fixed/adaptive particle-step ratio) is a pure function of the configuration,
not of the host.  ``benchmarks/check_trend.py`` gates it in CI like every
other ``speedup`` entry; wall-clock times are recorded for context only.

Emits ``BENCH_adaptive.json``.  Run standalone
(``python benchmarks/bench_adaptive.py``) or under pytest-benchmark
(``pytest benchmarks/bench_adaptive.py``).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from _bench_util import time_best, write_payload
from repro.data import PiecewiseConstant
from repro.inference import CalibrationConfig, calibrate
from repro.seir import DiseaseParameters
from repro.sim import make_ground_truth

DEFAULT_BREAKS = (12, 20, 28, 36, 44, 52)
DEFAULT_POLICY = {"target_low": 0.05, "target_high": 0.2,
                  "n_min": 100, "n_max": 1600}
TARGET = {"max_step_fraction": 0.7, "min_coverage_delta": 0}


def make_scenario(population: int, seed: int, horizon: int):
    """Town-scale synthetic truth with time-varying theta and rho."""
    params = DiseaseParameters(population=population,
                               initial_exposed=max(1, population // 500))
    return make_ground_truth(
        params=params, horizon=horizon, seed=seed,
        theta_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                         values=(0.32, 0.22, 0.28)),
        rho_schedule=PiecewiseConstant(breakpoints=(20, 36),
                                       values=(0.6, 0.85, 0.8)))


def truth_coverage(result, truth) -> dict:
    """How many per-window 90% CIs contain the known truth values."""
    covered, total = 0, 0
    for name in ("theta", "rho"):
        track = result.parameter_track(name)
        for w, wr in enumerate(result.windows):
            value = truth.truth_point(wr.window.end_day - 1)[name]
            covered += int(track.covers(w, value, "ci90"))
            total += 1
    return {"covered": covered, "total": total,
            "fraction": covered / total}


def summarize(result, truth, wall_seconds: float) -> dict:
    return {
        "ensemble_sizes": result.ensemble_sizes().tolist(),
        "total_particle_steps": result.total_particle_steps(),
        "ess_fractions": np.round(result.ess_fractions(), 4).tolist(),
        "coverage_ci90": truth_coverage(result, truth),
        "wall_seconds": wall_seconds,
    }


def run_adaptive_bench(draws: int = 200, replicates: int = 2,
                       resample: int = 400, seed: int = 41,
                       population: int = 60_000,
                       breaks=DEFAULT_BREAKS, sigma: float = 2.0,
                       policy: dict | None = None,
                       repeats: int = 1) -> dict:
    """Fixed-size baseline vs ESS-target adaptive run; returns the payload."""
    policy = dict(DEFAULT_POLICY if policy is None else policy)
    truth = make_scenario(population, seed=99, horizon=max(breaks))
    obs = truth.observations()
    base = dict(window_breaks=tuple(breaks), n_parameter_draws=draws,
                n_replicates=replicates, resample_size=resample,
                base_seed=seed, sigma=sigma)

    fixed_s, fixed = time_best(
        lambda: calibrate(obs, CalibrationConfig(**base),
                          base_params=truth.params), repeats)
    adaptive_s, adaptive = time_best(
        lambda: calibrate(obs, CalibrationConfig(
            **base, size_policy="ess", size_policy_options=policy),
            base_params=truth.params), repeats)

    fixed_steps = fixed.total_particle_steps()
    adaptive_steps = adaptive.total_particle_steps()
    return {
        "benchmark": "adaptive_ensemble_sizing",
        "scenario": {"population": population, "window_breaks": list(breaks),
                     "n_parameter_draws": draws, "n_replicates": replicates,
                     "resample_size": resample, "sigma": sigma,
                     "base_seed": seed, "truth_seed": 99},
        "policy": {"name": "ess", **policy},
        "fixed": summarize(fixed, truth, fixed_s),
        "adaptive": summarize(adaptive, truth, adaptive_s),
        "particle_step_fraction": adaptive_steps / fixed_steps,
        # fixed/adaptive particle-step ratio: the CI-gated headline number
        # (deterministic — both runs are serial and fully seeded)
        "speedup": fixed_steps / adaptive_steps,
        "target": dict(TARGET),
    }


def check_targets(payload: dict) -> None:
    """Assert the acceptance targets recorded in the payload."""
    fraction = payload["particle_step_fraction"]
    assert fraction <= payload["target"]["max_step_fraction"], (
        f"adaptive run spent {fraction:.2%} of the fixed baseline's "
        f"particle-steps (target <= {payload['target']['max_step_fraction']:.0%})")
    delta = (payload["adaptive"]["coverage_ci90"]["covered"]
             - payload["fixed"]["coverage_ci90"]["covered"])
    assert delta >= payload["target"]["min_coverage_delta"], (
        f"adaptive coverage {payload['adaptive']['coverage_ci90']} fell "
        f"below the fixed baseline's {payload['fixed']['coverage_ci90']}")


def test_adaptive_sizing_efficiency(benchmark, output_dir):
    """pytest-benchmark entry point; asserts the coverage/steps targets."""
    from _bench_util import once

    payload = once(benchmark, run_adaptive_bench)
    write_payload(payload, output_dir / "BENCH_adaptive.json")
    print("\nAdaptive sizing bench:", json.dumps(payload, indent=2))
    check_targets(payload)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--draws", type=int, default=200)
    parser.add_argument("--replicates", type=int, default=2)
    parser.add_argument("--resample", type=int, default=400)
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument("--population", type=int, default=60_000)
    parser.add_argument("--sigma", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_adaptive.json"))
    args = parser.parse_args(argv)
    payload = run_adaptive_bench(draws=args.draws, replicates=args.replicates,
                                 resample=args.resample, seed=args.seed,
                                 population=args.population, sigma=args.sigma,
                                 repeats=args.repeats)
    write_payload(payload, args.output)
    for tag in ("fixed", "adaptive"):
        s = payload[tag]
        cov = s["coverage_ci90"]
        print(f"{tag:>8}: sizes {s['ensemble_sizes']} | "
              f"{s['total_particle_steps']} particle-steps | "
              f"CI90 coverage {cov['covered']}/{cov['total']} | "
              f"{s['wall_seconds']:.2f}s")
    print(f"particle-step fraction {payload['particle_step_fraction']:.2f} "
          f"(target <= {payload['target']['max_step_fraction']}), "
          f"step-ratio speedup {payload['speedup']:.2f}x")
    check_targets(payload)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
